"""Bottom-up polyhedral fixpoint inferring inter-argument constraints.

For each SCC of the predicate dependency graph (processed lower SCCs
first), iterate the abstract immediate-consequence operator: each
clause contributes the projection, onto the head's argument-size
dimensions, of

  - the head argument size equations,
  - the instantiated size polyhedra of its positive body subgoals,
  - ``size = size`` links for positive equality subgoals,
  - nonnegativity of every logical-variable size;

clause contributions are joined (convex hull), and widening after a
delay guarantees termination.  One descending pass (re-evaluating the
operator once without widening) recovers precision lost to widening.

This derives the constraints the paper imports from [VG90]:
``append1 + append2 = append3`` for append, ``t1 >= 2 + t2`` for the
parser SCC, and so on.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.lp.program import BUILTIN_PREDICATES
from repro.linalg.constraints import Constraint
from repro.linalg.polyhedron import Polyhedron
from repro.sizes.norms import get_norm
from repro.sizes.size_equations import arg_dimension, atom_size_equations
from repro.interarg.domain import (
    SizeEnvironment,
    bottom_polyhedron,
    default_polyhedron,
    instantiate_on_args,
    variable_nonnegativity,
)


@dataclass
class InferenceSettings:
    """Tuning knobs for the fixpoint (exposed for the ablation bench).

    ``widen_after`` — ascending iterations before widening kicks in.
    ``max_iterations`` — hard cap; on hitting it the affected
    predicates fall back to the sound nonnegative-orthant default.
    ``narrowing_passes`` — descending iterations after stabilization.
    ``max_rows`` — iterate-complexity bound: polyhedra are weakened
    (rows dropped, soundly) past this size so pathological predicates
    cannot stall the fixpoint.
    ``join_strategy`` — ``"exact"`` (convex hull; discovers new facet
    directions) or ``"weak"`` (constraint-candidate join; cheaper but
    cannot discover directions — loses e.g. the gcd pipeline).
    """

    widen_after: int = 4
    max_iterations: int = 40
    narrowing_passes: int = 1
    max_rows: int = 16
    join_strategy: str = "exact"


def infer_interargument_constraints(
    program, norm="structural", settings=None, external=None, cache=None
):
    """Infer a :class:`SizeEnvironment` for every predicate of *program*.

    *external* may carry a pre-populated :class:`SizeEnvironment` whose
    entries are trusted verbatim (the paper's externally supplied
    constraints); predicates present there are not re-analyzed.

    *cache* may carry a certificate cache (anything with ``get``/
    ``put``, see :mod:`repro.core.certcache`): each dependency-graph
    SCC's solved polyhedra are then stored under the SCC's canonical
    fingerprint and recalled on later runs — the incremental-analysis
    fast path, since this fixpoint dominates analysis wall time.  A
    fingerprint only matches when the SCC's clauses *and* the contents
    of every callee polyhedron it imports are unchanged, so a recalled
    entry is exactly what re-solving would produce.
    """
    norm = get_norm(norm)
    settings = settings or InferenceSettings()
    env = external.copy() if external is not None else SizeEnvironment()

    graph = program.dependency_graph()
    for component in program.sccs():
        members = [
            indicator
            for indicator in component
            if program.predicate(*indicator) is not None
            and not env.known(indicator)
        ]
        if not members:
            continue
        if cache is not None and _recall_component(
            program, members, env, norm, settings, cache
        ):
            continue
        _solve_component(program, graph, members, env, norm, settings)
        if cache is not None:
            _publish_component(program, members, env, norm, settings, cache)
    return env


def _component_fingerprint(program, members, env, norm, settings):
    from repro.core.fingerprint import env_scc_fingerprint

    inference_key = (
        settings.widen_after,
        settings.max_iterations,
        settings.narrowing_passes,
        settings.max_rows,
        settings.join_strategy,
    )
    return env_scc_fingerprint(
        program, members, env, norm.name, inference_key
    )


def _recall_component(program, members, env, norm, settings, cache):
    """Install one SCC's polyhedra from the cache; False on a miss."""
    from repro.core.certcache import decode_env_entries
    from repro.obs import METRICS

    key, order = _component_fingerprint(
        program, members, env, norm, settings
    )
    payload = cache.get(key)
    decoded = (
        decode_env_entries(payload, order) if payload is not None else None
    )
    if decoded is None:
        if METRICS.enabled:
            METRICS.counter("scc.cache.env.miss").inc()
        return False
    for indicator, polyhedron in decoded.items():
        env.set(indicator, polyhedron)
    if METRICS.enabled:
        METRICS.counter("scc.cache.env.hit").inc()
    return True


def _publish_component(program, members, env, norm, settings, cache):
    """Store one freshly-solved SCC's polyhedra under its fingerprint."""
    from repro.core.certcache import encode_env_entries

    # Re-fingerprint after the solve: the key reads only *callee*
    # polyhedra (lower SCCs, solved before this one), so the key is
    # identical to the pre-solve one — recomputing just avoids
    # threading it through _solve_component.
    key, order = _component_fingerprint(
        program, members, env, norm, settings
    )
    cache.put(key, encode_env_entries(env, order), kind="env")


def _solve_component(program, graph, members, env, norm, settings):
    recursive = _is_recursive(graph, members)

    if not recursive:
        # A single non-recursive predicate needs exactly one evaluation.
        indicator = members[0]
        env.set(
            indicator,
            _predicate_step(program, indicator, env, norm, settings),
        )
        return

    current = {ind: bottom_polyhedron(ind) for ind in members}
    stable = False
    for iteration in range(settings.max_iterations):
        proposal = {}
        # Jacobi-style round: evaluate every member against the state
        # from the previous round (plus lower SCCs already in env).
        round_env = _overlay(env, current)
        for indicator in members:
            proposal[indicator] = _predicate_step(
                program, indicator, round_env, norm, settings
            )
        if iteration >= settings.widen_after:
            proposal = {
                ind: current[ind].widen(proposal[ind]) for ind in members
            }
        if all(
            proposal[ind].equivalent(current[ind]) for ind in members
        ):
            stable = True
            break
        current = proposal

    if not stable:
        # Sound fallback: sizes are nonnegative, nothing more.
        for indicator in members:
            env.set(indicator, default_polyhedron(indicator))
        return

    for _ in range(settings.narrowing_passes):
        round_env = _overlay(env, current)
        descended = {
            ind: _predicate_step(
                program, ind, round_env, norm, settings
            )
            for ind in members
        }
        # Keep the descent only while it stays a sound fixpoint
        # (F(descended) must be below descended).
        if all(descended[ind].entails(current[ind]) for ind in members):
            current = descended
        else:
            break

    for indicator in members:
        env.set(indicator, current[indicator])


def _overlay(env, overrides):
    overlay = env.copy()
    for indicator, poly in overrides.items():
        overlay.set(indicator, poly)
    return overlay


def _is_recursive(graph, members):
    if len(members) > 1:
        return True
    node = members[0]
    return graph.has_node(node) and graph.has_edge(node, node)


def _predicate_step(program, indicator, env, norm, settings=None):
    """One application of the abstract consequence operator."""
    settings = settings or InferenceSettings()
    max_rows = settings.max_rows
    result = bottom_polyhedron(indicator)
    for clause in program.clauses_for(indicator):
        contribution = _clause_polyhedron(clause, env, norm).weakened(max_rows)
        if settings.join_strategy == "weak":
            if result.is_empty():
                result = contribution
            elif not contribution.is_empty():
                result = result.join_weak(contribution)
        else:
            result = result.join(contribution)
    return result.weakened(max_rows)


def _clause_polyhedron(clause, env, norm):
    """Project one clause's size constraints onto its head dimensions."""
    _, arity = clause.indicator
    head_dims = tuple(arg_dimension(i) for i in range(1, arity + 1))

    constraints = list(atom_size_equations(clause.head, norm))
    atoms = [clause.head]
    for literal in clause.body:
        if not literal.positive:
            continue  # negative subgoals bind nothing (Appendix D)
        atoms.append(literal.atom)
        body_constraints = _literal_constraints(literal, env, norm)
        if body_constraints is None:
            return bottom_polyhedron(clause.indicator)
        constraints.extend(body_constraints)
    constraints.extend(variable_nonnegativity(atoms, norm))

    big = Polyhedron(
        _all_variables(constraints, head_dims), constraints
    )
    if big.is_empty():
        return bottom_polyhedron(clause.indicator)
    return big.project(head_dims)


def _literal_constraints(literal, env, norm):
    """Constraints a positive body literal contributes, or None if the
    literal's predicate is currently bottom (no derivable facts yet)."""
    indicator = literal.indicator
    if indicator in BUILTIN_PREDICATES:
        name, _ = indicator
        if name == "=":
            left, right = literal.atom.args
            norm_obj = get_norm(norm)
            return [
                Constraint.eq(norm_obj.size_expr(left), norm_obj.size_expr(right))
            ]
        return []  # comparisons etc. supply no size information
    poly = env.get(indicator)
    if poly.is_empty():
        return None
    return instantiate_on_args(poly, literal.atom, norm)


def _all_variables(constraints, extra):
    names = set(extra)
    for constraint in constraints:
        names |= constraint.variables()
    return sorted(names, key=repr)
