"""Size environments: predicate -> polyhedron over argument sizes.

A :class:`SizeEnvironment` maps each predicate indicator ``(name, n)``
to a :class:`~repro.linalg.polyhedron.Polyhedron` over the dimensions
``("arg", 1) ... ("arg", n)``, over-approximating the set of argument
size vectors of *derivable facts* for that predicate.

EDB predicates (referenced but never defined) default to the
nonnegative orthant — sizes are nonnegative but otherwise unknown.
Callers may override individual entries with externally supplied
constraints, which reproduces the paper's "imported feasibility
constraints ... supplied by other external means".
"""

from __future__ import annotations

from repro.linalg.constraints import Constraint
from repro.linalg.linexpr import LinearExpr
from repro.linalg.polyhedron import Polyhedron
from repro.sizes.size_equations import arg_dimension, argument_size_exprs
from repro.sizes.norms import get_norm, size_variable


class SizeEnvironment:
    """Mapping from predicate indicator to argument-size polyhedron."""

    def __init__(self):
        self._entries = {}

    def set(self, indicator, polyhedron):
        """Install a polyhedron for *indicator* (dimension-checked)."""
        name, arity = indicator
        expected = tuple(arg_dimension(i) for i in range(1, arity + 1))
        if tuple(polyhedron.dimensions) != expected:
            raise ValueError(
                "polyhedron for %s/%d must have dimensions %s"
                % (name, arity, list(expected))
            )
        self._entries[indicator] = polyhedron

    def get(self, indicator):
        """The polyhedron for *indicator*; unknown predicates get the
        nonnegative orthant (sound default)."""
        entry = self._entries.get(indicator)
        if entry is not None:
            return entry
        return default_polyhedron(indicator)

    def known(self, indicator):
        """True if *indicator* has an explicit entry."""
        return indicator in self._entries

    def items(self):
        """The explicit (indicator, polyhedron) entries."""
        return self._entries.items()

    def copy(self):
        """An independent copy."""
        env = SizeEnvironment()
        env._entries = dict(self._entries)
        return env

    def set_from_constraints(self, indicator, constraints):
        """Install a polyhedron built from externally supplied
        constraints over ``("arg", i)`` dimensions (plus nonnegativity)."""
        poly = default_polyhedron(indicator).with_constraints(constraints)
        self.set(indicator, poly)

    def __str__(self):
        lines = []
        for (name, arity), poly in sorted(
            self._entries.items(), key=lambda kv: kv[0]
        ):
            lines.append("%s/%d:" % (name, arity))
            body = str(poly) or "  (top)"
            lines.extend("  " + line for line in body.splitlines())
        return "\n".join(lines)


def default_polyhedron(indicator):
    """Nonnegative orthant over the predicate's argument dimensions."""
    _, arity = indicator
    dims = tuple(arg_dimension(i) for i in range(1, arity + 1))
    return Polyhedron.nonnegative_orthant(dims)


def bottom_polyhedron(indicator):
    """The empty polyhedron over a predicate's argument dims."""
    _, arity = indicator
    dims = tuple(arg_dimension(i) for i in range(1, arity + 1))
    return Polyhedron.bottom(dims)


def instantiate_on_args(polyhedron, atom, norm="structural"):
    """Instantiate a predicate's size polyhedron on an atom's arguments.

    Substitutes the size polynomial of the atom's i-th argument for the
    dimension ``("arg", i)``, yielding constraints over logical-variable
    sizes.  This is how a subgoal ``append(E, [X|F], P)`` turns the fact
    constraint ``arg1 + arg2 = arg3`` into ``E + (2 + X + F) = P``
    (Example 3.1).
    """
    exprs = argument_size_exprs(atom, norm)
    if len(exprs) != len(polyhedron.dimensions):
        raise ValueError(
            "atom %s has %d arguments; polyhedron has %d dimensions"
            % (atom, len(exprs), len(polyhedron.dimensions))
        )
    mapping = dict(zip(polyhedron.dimensions, exprs))
    return [c.substitute(mapping) for c in polyhedron.system]


def variable_nonnegativity(atoms, norm="structural"):
    """Constraints ``size(V) >= 0`` for every variable of *atoms*."""
    norm = get_norm(norm)
    seen = set()
    constraints = []
    for atom in atoms:
        for var in atom.variables():
            name = size_variable(var)
            if name not in seen:
                seen.add(name)
                constraints.append(Constraint.ge(LinearExpr.of(name)))
    return constraints
