"""Inter-argument constraint inference — the [VG90] substrate.

The paper *imports* linear feasibility constraints on the argument
sizes of derivable facts (e.g. ``append1 + append2 = append3``,
``t1 >= 2 + t2``) and cites Van Gelder [VG90] for their derivation.
This package computes them automatically: a bottom-up fixpoint over a
convex-polyhedron abstract domain, one strongly connected component at
a time, with widening for termination and one descending (narrowing)
pass for precision.

Public API: :func:`infer_interargument_constraints` and
:class:`SizeEnvironment`.
"""

from repro.interarg.domain import SizeEnvironment, instantiate_on_args
from repro.interarg.inference import (
    InferenceSettings,
    infer_interargument_constraints,
)

__all__ = [
    "SizeEnvironment",
    "instantiate_on_args",
    "InferenceSettings",
    "infer_interargument_constraints",
]
