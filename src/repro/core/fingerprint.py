"""Canonical, rename-invariant SCC fingerprints for incremental analysis.

The unit of caching in the incremental pipeline is the SCC, so the
cache key must be a *content address of everything an SCC's analysis
reads* — and nothing else.  Two fingerprints are computed here:

:func:`env_scc_fingerprint`
    identifies one SCC of the predicate dependency graph for the
    inter-argument fixpoint (:mod:`repro.interarg.inference`).  It
    covers the SCC's own clauses, the *content* of every callee
    polyhedron the clauses import, the norm, and the inference
    settings.

:func:`scc_certificate_fingerprint`
    identifies one recursive SCC of the *adorned* graph for the
    termination stages (rule_systems → certify).  It covers the
    member clauses under their adornments, the content of every
    environment polyhedron the rule systems import (members included —
    nonlinear recursion imports them too, Section 6.2), and the
    settings the SCC stages read.

Both are invariant under:

- **variable renaming** — clause variables are alpha-numbered in
  first-occurrence order, like :func:`repro.core.pipeline.program_fingerprint`;
- **predicate renaming** — member predicates are replaced by canonical
  labels computed by color refinement (below), builtins keep their
  names, and non-member callees are replaced by a digest of their
  polyhedron *content* (which mentions no names at all);
- **clause reordering** — each member's rendered clause multiset is
  sorted.

Replacing callee references by polyhedron-content tokens also gives
the invalidation rule its *firewall* semantics: editing (or renaming)
a lower predicate invalidates a downstream SCC only when the edit
actually changes the lower predicate's proved inter-argument relation.

Canonical member labels come from Weisfeiler–Leman-style color
refinement: every member starts with the digest of its own clause
multiset (member references uniformized), then each round folds the
current colors of referenced members in; after ``len(members) + 1``
rounds the coloring is stable.  Members are ordered by final color;
members that still tie are structurally symmetric, so either tie
order renders the identical canonical text.
"""

from __future__ import annotations

import hashlib

from repro.lp.program import BUILTIN_PREDICATES
from repro.lp.terms import Struct, Var

__all__ = [
    "ENV_KEY_PREFIX",
    "CERT_KEY_PREFIX",
    "canonical_polyhedron",
    "env_scc_fingerprint",
    "scc_certificate_fingerprint",
]

#: Key-format versions; bump when the canonical text layout changes so
#: stale cached entries become unreachable instead of wrong.
ENV_KEY_PREFIX = "env1:"
CERT_KEY_PREFIX = "scc1:"


def _digest(text):
    return hashlib.sha256(text.encode()).hexdigest()


def canonical_polyhedron(polyhedron):
    """Order-independent canonical text of a polyhedron's constraints.

    Rows are already canonically scaled by :class:`Constraint`; the
    dimensions are positional ``("arg", i)`` names, so the rendering
    mentions no predicate or variable names — a renamed program yields
    byte-identical polyhedron text.
    """
    rows = []
    for constraint in polyhedron.system:
        coefficients = ",".join(
            "%d:%s" % (var[1], coeff)
            for var, coeff in constraint.expr.items()
        )
        rows.append(
            "%s|%s|%s" % (constraint.relation, coefficients,
                          constraint.expr.const)
        )
    return "%d;%s" % (len(polyhedron.dimensions), ";".join(sorted(rows)))


def _polyhedron_token(env, indicator):
    """Content token for a non-member callee: its arity plus a digest
    of its environment polyhedron."""
    return "x%d:%s" % (
        indicator[1], _digest(canonical_polyhedron(env.get(indicator)))[:16]
    )


def _canonical_term(term, names):
    """Alpha-numbered term rendering (same scheme the whole-program
    fingerprint in :mod:`repro.core.pipeline` uses)."""
    if isinstance(term, Var):
        index = names.get(term.name)
        if index is None:
            index = names[term.name] = len(names)
        return "_%d" % index
    if isinstance(term, Struct):
        return "%s(%s)" % (
            term.functor,
            ",".join(_canonical_term(arg, names) for arg in term.args),
        )
    return str(term)


def _render_clause(clause, head_token, reference_token):
    """One clause as canonical text.

    *head_token* stands in for the clause's own predicate;
    *reference_token(position, literal)* supplies the token for each
    body literal's predicate.  Data functors inside argument terms are
    left alone: a predicate rename rewrites predicate positions, not
    term constructors.
    """
    names = {}
    head = "%s(%s)" % (
        head_token,
        ",".join(_canonical_term(arg, names) for arg in clause.head_args),
    )
    body = []
    for position, literal in enumerate(clause.body):
        args = ",".join(
            _canonical_term(arg, names) for arg in literal.args
        )
        body.append(
            "%s%s(%s)"
            % ("" if literal.positive else "\\+",
               reference_token(position, literal), args)
        )
    return head + ":-" + ",".join(body)


def _refine_members(render_member):
    """Color-refine a member set into a canonical order.

    *render_member* is ``{member: render(tokens) -> str}`` where
    *tokens* maps members to their current colors.  Returns the
    members ordered by final color (ties are symmetric — see module
    docstring).
    """
    members = list(render_member)
    colors = {member: "M" for member in members}
    for _ in range(len(members) + 1):
        colors = {
            member: _digest(colors[member] + "|" +
                            render_member[member](colors))
            for member in members
        }
    return sorted(members, key=lambda member: colors[member])


def _canonical_scc_text(render_member, describe_member):
    """Shared skeleton: refine, then render each member in canonical
    order under its final ``m<i>`` label."""
    order = _refine_members(render_member)
    labels = {member: "m%d" % i for i, member in enumerate(order)}
    blocks = [
        "%s{%s}%s"
        % (labels[member], render_member[member](labels),
           describe_member(member))
        for member in order
    ]
    return "\n".join(blocks), order


def env_scc_fingerprint(program, members, env, norm_name, inference_key):
    """Content address of one dependency-graph SCC for the
    inter-argument fixpoint.

    *members* — the SCC's predicate indicators.  *env* — the
    :class:`~repro.interarg.domain.SizeEnvironment` holding the
    already-solved lower SCCs.  *inference_key* — the hashable
    inference-settings tuple.

    Returns ``(key, canonical_member_order)``; the order fixes how a
    cached entry's polyhedra map back onto the (possibly renamed)
    current members.
    """
    member_set = set(members)

    def clause_renderer(member):
        def render(tokens):
            def reference_token(_position, literal):
                indicator = literal.indicator
                if indicator in member_set:
                    return tokens[indicator]
                if indicator in BUILTIN_PREDICATES:
                    return "b:%s/%d" % indicator
                return _polyhedron_token(env, indicator)
            rendered = sorted(
                _render_clause(clause, "self", reference_token)
                for clause in program.clauses_for(member)
            )
            return "&".join(rendered)
        return render

    render_member = {member: clause_renderer(member) for member in members}
    text, order = _canonical_scc_text(
        render_member, lambda member: "/%d" % member[1]
    )
    material = "env|norm=%s|inference=%r|%s" % (norm_name, inference_key, text)
    return ENV_KEY_PREFIX + _digest(material), order


def scc_certificate_fingerprint(program, members, env, settings_key):
    """Content address of one recursive adorned SCC for the
    termination stages.

    *members* — the SCC's :class:`~repro.core.adornment.AdornedPredicate`
    nodes.  *env* — the inferred size environment (member polyhedra
    included: preceding recursive subgoals import them).
    *settings_key* — the hashable tuple of every analyzer knob the SCC
    stages read (norm, theta mode, backend, elimination settings).

    Returns ``(key, canonical_member_order)``.
    """
    from repro.core.adornment import clause_call_adornments

    by_pair = {(node.indicator, node.adornment): node for node in members}

    def clause_renderer(member):
        def render(tokens):
            rendered = []
            for clause in program.clauses_for(member.indicator):
                adornments = clause_call_adornments(
                    clause, member.adornment
                )

                def reference_token(position, literal):
                    indicator = literal.indicator
                    if indicator in BUILTIN_PREDICATES:
                        return "b:%s/%d" % indicator
                    callee = by_pair.get(
                        (indicator, adornments[position])
                    )
                    if callee is not None:
                        # A member reference: its current color plus
                        # its polyhedron content (preceding recursive
                        # subgoals import member polyhedra too).
                        return "%s~%s" % (
                            tokens[callee],
                            _polyhedron_token(env, indicator),
                        )
                    return _polyhedron_token(env, indicator)

                rendered.append(
                    _render_clause(clause, "self", reference_token)
                )
            return "&".join(sorted(rendered))
        return render

    render_member = {member: clause_renderer(member) for member in members}
    text, order = _canonical_scc_text(
        render_member,
        lambda member: "/%d^%s" % (member.arity, member.adornment),
    )
    material = "scc|settings=%r|%s" % (settings_key, text)
    return CERT_KEY_PREFIX + _digest(material), order
