"""Well-modedness checking.

The termination argument reads "bound" as *ground at call time*, which
holds when the program is well-moded for the query: every variable in
a bound position is produced before it is consumed.  The analyzer's
adornment inference assumes this; :func:`check_well_moded` makes the
assumption checkable so a client can reject (or at least flag)
programs where "bound" might not mean ground:

- every variable of a clause head's bound arguments is *supplied* by
  the caller (fine by definition);
- every variable in a *bound* argument of a body call must be ground
  when the call starts: supplied by the head's bound arguments or by
  an earlier positive body literal;
- every variable in the head's *free* arguments must be ground by the
  end of the body (so answers are ground and the "success grounds all
  arguments" assumption of adornment propagation is justified);
- negative literals must be called with all their variables ground
  (Appendix D: "normally negative subgoals are only attempted with all
  arguments bound").
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.lp.program import BUILTIN_PREDICATES
from repro.lp.terms import term_variables
from repro.core.adornment import (
    AdornedPredicate,
    adorned_call_graph,
    clause_call_adornments,
    _head_bound_vars,
    _update_bound,
    _vars_all_bound,
)


@dataclass
class ModeViolation:
    """One well-modedness defect, with enough context to report."""

    node: AdornedPredicate
    clause: object
    kind: str          # "unbound-input" | "unground-answer" | "floundering"
    detail: str

    def __str__(self):
        return "[%s] %s in %s under %s" % (
            self.kind, self.detail, self.clause, self.node,
        )


@dataclass
class ModeReport:
    """Aggregated well-modedness violations."""
    violations: list = field(default_factory=list)

    @property
    def well_moded(self):
        """True when no violations were found."""
        return not self.violations

    def describe(self):
        """Human-readable rendering."""
        if self.well_moded:
            return "well-moded: yes"
        return "well-moded: NO\n" + "\n".join(
            "  %s" % v for v in self.violations
        )


def check_well_moded(program, root, mode):
    """Check every reachable (clause, adornment) combination."""
    _, nodes = adorned_call_graph(program, tuple(root), mode)
    report = ModeReport()
    for node in sorted(nodes, key=str):
        for clause in program.clauses_for(node.indicator):
            _check_clause(node, clause, report)
    return report


def _check_clause(node, clause, report):
    bound = set(_head_bound_vars(clause, node.adornment))
    adornments = clause_call_adornments(clause, node.adornment)

    for literal, call_adornment in zip(clause.body, adornments):
        if not literal.positive:
            loose = [
                v.name
                for v in _literal_variables(literal)
                if v not in bound
            ]
            if loose:
                report.violations.append(
                    ModeViolation(
                        node=node,
                        clause=clause,
                        kind="floundering",
                        detail="negative call %s with unbound %s"
                        % (literal, ", ".join(loose)),
                    )
                )
        elif literal.indicator not in BUILTIN_PREDICATES:
            # Adornment inference already marks an argument bound only
            # when all its variables are; nothing extra to check for
            # positive user calls.  (The per-argument adornment is the
            # input-groundness statement.)
            pass
        _update_bound(literal, bound)

    for position, argument in enumerate(clause.head_args, start=1):
        if node.adornment.is_bound(position):
            continue
        loose = [v.name for v in term_variables(argument) if v not in bound]
        if loose:
            report.violations.append(
                ModeViolation(
                    node=node,
                    clause=clause,
                    kind="unground-answer",
                    detail="free head argument %d keeps %s unbound"
                    % (position, ", ".join(loose)),
                )
            )


def _literal_variables(literal):
    return term_variables(literal.atom)
