"""Per rule × recursive-subgoal size systems — the paper's Eq. 1.

For a rule with head ``p_i`` (under a given adornment) and a chosen
recursive subgoal ``p_j``, collect

    x = a + A.phi      (bound-argument sizes of the head)
    y = b + B.phi      (bound-argument sizes of the recursive subgoal)
    constraints(phi)   (imported inter-argument constraints of the
                        subgoals *preceding* p_j, instantiated on their
                        actual arguments; the paper's ``0 = c + C.phi``)
    phi >= 0

where ``phi`` collects the sizes of the rule's logical variables.  The
``(a, A)`` and ``(b, B)`` data are nonnegative by construction of the
norm — the fact the paper exploits to eliminate the dual variables
``u, v`` in closed form.

Analysis nodes are :class:`~repro.core.adornment.AdornedPredicate`
values: "recursive" means the body literal's (predicate, call
adornment) pair lies in the same SCC of the *adorned* dependency graph.

Negation is handled per Appendix D: negative subgoals preceding the
recursive subgoal are discarded (they bind nothing and contribute no
sizes); a *negative* recursive subgoal is analyzed as though positive.

Nonlinear recursion per Section 6.2: recursive subgoals preceding the
chosen one contribute their inter-argument constraints exactly like
lower-SCC subgoals — which is why inter-argument inference for the
whole SCC runs before termination analysis starts.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.lp.program import BUILTIN_PREDICATES
from repro.linalg.constraints import Constraint
from repro.sizes.norms import get_norm
from repro.sizes.size_equations import argument_size_exprs
from repro.interarg.domain import instantiate_on_args
from repro.core.adornment import AdornedPredicate, clause_call_adornments


@dataclass
class RuleSizeSystem:
    """Eq. 1 data for one (rule, recursive-subgoal) combination."""

    clause: object
    head_node: AdornedPredicate
    subgoal_node: AdornedPredicate
    subgoal_position: int      # 0-based index into the clause body
    x_exprs: list              # size polynomials of bound head args
    x_positions: tuple         # 1-based bound arg positions of the head
    y_exprs: list              # size polynomials of bound subgoal args
    y_positions: tuple
    imported: list = field(default_factory=list)  # constraints over phi

    @property
    def edge(self):
        """The adorned dependency edge this combination belongs to."""
        return (self.head_node, self.subgoal_node)

    def phi_variables(self):
        """Every size variable appearing anywhere in the system."""
        names = set()
        for expr in self.x_exprs:
            names |= expr.variables()
        for expr in self.y_exprs:
            names |= expr.variables()
        for constraint in self.imported:
            names |= constraint.variables()
        return sorted(names, key=repr)

    def describe(self):
        """Human-readable rendering."""
        lines = [
            "rule: %s" % self.clause,
            "recursive subgoal #%d: %s"
            % (self.subgoal_position, self.subgoal_node),
            "x (bound head args %s): %s"
            % (list(self.x_positions), [str(e) for e in self.x_exprs]),
            "y (bound subgoal args %s): %s"
            % (list(self.y_positions), [str(e) for e in self.y_exprs]),
        ]
        if self.imported:
            lines.append("imported constraints:")
            lines.extend("  %s" % c for c in self.imported)
        return "\n".join(lines)


def build_rule_systems(clause, head_node, scc_nodes, env, norm="structural"):
    """All :class:`RuleSizeSystem` objects for one clause analyzed as
    part of *head_node*'s SCC.

    Parameters
    ----------
    clause:
        A rule of ``head_node.indicator``.
    head_node:
        The adorned predicate the clause is being analyzed under.
    scc_nodes:
        The set of :class:`AdornedPredicate` members of the SCC.
    env:
        A :class:`~repro.interarg.domain.SizeEnvironment` supplying
        imported inter-argument constraints.
    """
    norm = get_norm(norm)
    scc_nodes = set(scc_nodes)
    body_adornments = clause_call_adornments(clause, head_node.adornment)

    systems = []
    for position, (literal, adornment) in enumerate(
        zip(clause.body, body_adornments)
    ):
        if literal.indicator in BUILTIN_PREDICATES:
            continue
        subgoal_node = AdornedPredicate(literal.indicator, adornment)
        if subgoal_node not in scc_nodes:
            continue
        systems.append(
            _build_one(clause, head_node, subgoal_node, position, env, norm)
        )
    return systems


def _build_one(clause, head_node, subgoal_node, position, env, norm):
    subgoal = clause.body[position]

    head_sizes = argument_size_exprs(clause.head, norm)
    subgoal_sizes = argument_size_exprs(subgoal.atom, norm)

    x_positions = head_node.bound_positions()
    y_positions = subgoal_node.bound_positions()
    x_exprs = [head_sizes[i - 1] for i in x_positions]
    y_exprs = [subgoal_sizes[i - 1] for i in y_positions]

    imported = []
    for earlier in clause.body[:position]:
        imported.extend(_imported_for(earlier, env, norm))

    return RuleSizeSystem(
        clause=clause,
        head_node=head_node,
        subgoal_node=subgoal_node,
        subgoal_position=position,
        x_exprs=x_exprs,
        x_positions=x_positions,
        y_exprs=y_exprs,
        y_positions=y_positions,
        imported=imported,
    )


def _imported_for(literal, env, norm):
    """Constraints contributed by a subgoal preceding the recursive one."""
    if not literal.positive:
        return []  # Appendix D: discard preceding negative subgoals
    indicator = literal.indicator
    if indicator in BUILTIN_PREDICATES:
        name, _ = indicator
        if name == "=":
            left, right = literal.atom.args
            return [
                Constraint.eq(norm.size_expr(left), norm.size_expr(right))
            ]
        return []  # comparisons contribute nothing (Example 5.1)
    polyhedron = env.get(indicator)
    if polyhedron.is_empty():
        # No derivable facts: the recursive subgoal is unreachable via
        # this rule; an always-false import makes the pair vacuous.
        return [Constraint.ge(-1)]
    return instantiate_on_args(polyhedron, literal.atom, norm)
