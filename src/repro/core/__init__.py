"""The paper's primary contribution: the termination analyzer.

Pipeline (Sections 3–6 of the paper):

1. :mod:`repro.core.adornment` — infer a single bound/free adornment
   per predicate from the query mode.
2. :mod:`repro.core.rule_system` — for each rule and each recursive
   subgoal, assemble Eq. 1: head/subgoal argument-size polynomials and
   imported inter-argument constraints from preceding subgoals.
3. :mod:`repro.core.dual` — turn the universally quantified decrease
   requirement Eq. 2 into linear constraints on the lambda multipliers
   via LP duality (Eqs. 5–9), eliminating the dual variables with
   Fourier–Motzkin.
4. :mod:`repro.core.theta` — choose the theta offsets for mutual
   recursion and reject zero-weight cycles via min-plus closure
   (Section 6.1); Appendix C negative-weight search as an option.
5. :mod:`repro.core.pipeline` — the staged execution engine: named
   stages (adorn, interarg, rule_systems, dualize, theta, solve,
   certify) with per-stage traces and memoization; final feasibility
   goes through a pluggable :mod:`repro.solve` backend.
6. :mod:`repro.core.analyzer` — settings + façade composing the
   pipeline, returning :class:`~repro.core.certificate.TerminationProof`
   certificates.
7. :mod:`repro.core.verifier` — independently re-check certificates by
   solving the *primal* LP Eq. 4 with the exact simplex.
"""

from repro.core.adornment import (
    Adornment,
    AdornedPredicate,
    adorned_call_graph,
    infer_adornments,
)
from repro.core.analyzer import (
    DISPROVED,
    PROVED,
    UNKNOWN,
    AnalysisResult,
    AnalyzerSettings,
    SCCResult,
    TerminationAnalyzer,
    analyze_program,
    validate_query,
)
from repro.core.pipeline import (
    STAGES,
    AnalysisPipeline,
    AnalysisTrace,
    StageTrace,
    clear_caches,
)
from repro.core.capture import CapturePlan, plan_capture_rules
from repro.core.certcache import MemoryCertificateCache
from repro.core.certificate import SCCProof, TerminationProof
from repro.core.fingerprint import (
    canonical_polyhedron,
    env_scc_fingerprint,
    scc_certificate_fingerprint,
)
from repro.core.verifier import VerificationError, verify_proof
from repro.core.wellmoded import ModeReport, check_well_moded

__all__ = [
    "DISPROVED",
    "PROVED",
    "UNKNOWN",
    "Adornment",
    "AdornedPredicate",
    "adorned_call_graph",
    "infer_adornments",
    "AnalysisResult",
    "AnalyzerSettings",
    "SCCResult",
    "TerminationAnalyzer",
    "analyze_program",
    "validate_query",
    "STAGES",
    "AnalysisPipeline",
    "AnalysisTrace",
    "StageTrace",
    "clear_caches",
    "MemoryCertificateCache",
    "canonical_polyhedron",
    "env_scc_fingerprint",
    "scc_certificate_fingerprint",
    "SCCProof",
    "TerminationProof",
    "VerificationError",
    "verify_proof",
    "CapturePlan",
    "plan_capture_rules",
    "ModeReport",
    "check_well_moded",
]
