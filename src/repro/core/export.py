"""Machine-readable certificate export.

Serializes analysis results and termination certificates to plain
dicts / JSON so downstream tools (query planners, CI gates, proof
archives) can consume verdicts without importing this library.
Fractions are rendered as strings (``"1/2"``) to stay exact.
"""

from __future__ import annotations

import json
from fractions import Fraction


def _fraction(value):
    value = Fraction(value)
    if value.denominator == 1:
        return str(value.numerator)
    return "%d/%d" % (value.numerator, value.denominator)


def node_to_dict(node):
    """Serialize an adorned predicate."""
    return {
        "predicate": node.name,
        "arity": node.arity,
        "adornment": str(node.adornment),
    }


def scc_proof_to_dict(proof):
    """Serialize one SCC certificate."""
    data = {
        "members": [node_to_dict(node) for node in proof.members],
        "norm": proof.norm,
        "trivially_nonrecursive": proof.trivially_nonrecursive,
    }
    if proof.trivially_nonrecursive:
        return data
    data["lambdas"] = [
        {
            "node": node_to_dict(node),
            "weights": {
                str(position): _fraction(weight)
                for position, weight in sorted(weights.items())
            },
        }
        for node, weights in sorted(
            proof.lambdas.items(), key=lambda kv: str(kv[0])
        )
    ]
    data["thetas"] = [
        {
            "from": node_to_dict(i),
            "to": node_to_dict(j),
            "value": _fraction(value),
        }
        for (i, j), value in sorted(
            proof.thetas.items(), key=lambda kv: (str(kv[0][0]), str(kv[0][1]))
        )
    ]
    return data


def trace_to_dict(trace):
    """Serialize an :class:`~repro.core.pipeline.AnalysisTrace` as a
    list of per-stage counter dicts (stages that ran, pipeline order)."""
    return [
        {
            "stage": s.stage,
            "calls": s.calls,
            "wall_time_ms": round(s.wall_time * 1000, 3),
            "rows_in": s.rows_in,
            "rows_out": s.rows_out,
            "cache_hits": s.cache_hits,
            "cache_misses": s.cache_misses,
            "pivots": s.pivots,
            "eliminations": s.eliminations,
        }
        for s in trace.stages()
    ]


def result_to_dict(result):
    """Serialize an :class:`~repro.core.analyzer.AnalysisResult`."""
    data = {
        "root": {"predicate": result.root[0], "arity": result.root[1]},
        "mode": result.root_mode,
        "status": result.status,
        "norm": result.norm,
        "method": getattr(result, "method", "argsize") or "argsize",
        "sccs": [],
    }
    if result.trace is not None:
        data["trace"] = trace_to_dict(result.trace)
    for scc in result.scc_results:
        if scc.proved and scc.proof is not None:
            entry = {"status": scc.status, "proof": scc_proof_to_dict(scc.proof)}
        else:
            # UNKNOWN/DISPROVED SCCs, and PROVED ones without a lambda
            # certificate (size-change proofs carry a reason instead).
            entry = {
                "status": scc.status,
                "members": [node_to_dict(node) for node in scc.members],
                "reason": scc.reason,
            }
        method = getattr(scc, "method", "")
        if method:
            entry["method"] = method
        data["sccs"].append(entry)
    return data


def result_to_json(result, indent=2):
    """Serialize an AnalysisResult to a JSON string."""
    return json.dumps(result_to_dict(result), indent=indent, sort_keys=False)
