"""The termination analyzer: settings + orchestration façade.

:func:`analyze_program` (or :class:`TerminationAnalyzer` for more
control) runs the full pipeline of the paper:

1. build the *adorned* dependency graph from the query mode — each
   (predicate, bound/free pattern) pair is its own analysis node, which
   realizes the paper's preprocessing assumption that "every predicate
   has the same bound-free adornment";
2. infer inter-argument constraints for every predicate (the [VG90]
   substrate, run for the whole program up front — Section 6.2 requires
   the SCC's own constraints to be available *before* its termination
   analysis);
3. per recursive SCC of the adorned graph (bottom-up): build Eq. 1
   systems for every rule × recursive-subgoal combination, dualize to
   lambda constraints, choose thetas, reject zero-weight cycles, and
   test feasibility; a feasible point yields the lambda certificate;
4. aggregate: the program terminates on the queried mode if every
   reachable recursive SCC has a certificate.

The staged execution itself lives in :mod:`repro.core.pipeline`
(named stages, per-stage traces, memoization); the final feasibility
test goes through a pluggable backend from :mod:`repro.solve`.
:class:`TerminationAnalyzer` composes the two and validates settings
eagerly, so misconfiguration fails at construction, not mid-SCC.

The verdict is ``PROVED`` or ``UNKNOWN`` — the method is a sufficient
condition (Section 7); ``UNKNOWN`` never means "diverges".  The
three-valued ``DISPROVED`` verdict exists one layer up, in
:mod:`repro.methods`, whose ``nonterm`` detector exhibits looping
derivations and whose ``portfolio`` driver races provers per SCC.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import AnalysisError
from repro.lp.program import Program
from repro.interarg import InferenceSettings
from repro.core.pipeline import (
    DISPROVED,
    PROVED,
    UNKNOWN,
    AnalysisPipeline,
    AnalysisResult,
    AnalysisTrace,
    SCCResult,
    StageTrace,
    resolve_settings,
)

__all__ = [
    "DISPROVED",
    "PROVED",
    "UNKNOWN",
    "AnalyzerSettings",
    "AnalysisResult",
    "AnalysisTrace",
    "SCCResult",
    "StageTrace",
    "TerminationAnalyzer",
    "analyze_program",
    "validate_query",
]


def validate_query(program, root, mode):
    """Check a (root, mode) query against a parsed program.

    A root naming an undefined predicate — or the right name at the
    wrong arity — used to sail through the pipeline and come back
    vacuously ``PROVED`` (no reachable SCCs), or surface as an opaque
    downstream :class:`~repro.errors.ModeError`.  Every request
    front end (the CLI, :func:`repro.batch.analyze_many` workers, and
    the ``repro.serve`` request validator) calls this first instead,
    so a typo'd root fails loudly, with the program's actual
    predicates in the message.

    Returns the normalized ``((name, arity), mode)`` pair; raises
    :class:`~repro.errors.AnalysisError` on any mismatch.
    """
    try:
        name, arity = tuple(root)
        arity = int(arity)
    except (TypeError, ValueError):
        raise AnalysisError(
            "root must be a (name, arity) pair, got %r" % (root,)
        ) from None
    mode = str(mode)
    defined = sorted(program.defined_indicators())
    if (name, arity) not in defined:
        same_name = ["%s/%d" % pair for pair in defined if pair[0] == name]
        if same_name:
            raise AnalysisError(
                "root %s/%d does not match the program: %s is defined "
                "with arity %s" % (name, arity, name,
                                   ", ".join(same_name))
            )
        raise AnalysisError(
            "root %s/%d is not defined by the program; defined "
            "predicates: %s"
            % (name, arity,
               ", ".join("%s/%d" % pair for pair in defined) or "(none)")
        )
    if len(mode) != arity:
        raise AnalysisError(
            "mode %r has %d positions but %s/%d needs %d"
            % (mode, len(mode), name, arity, arity)
        )
    bad = sorted(set(mode) - set("bf"))
    if bad:
        raise AnalysisError(
            "mode %r may use only 'b' (bound) and 'f' (free), got %s"
            % (mode, ", ".join(repr(c) for c in bad))
        )
    return (name, arity), mode


@dataclass
class AnalyzerSettings:
    """Analyzer configuration (every knob is ablatable).

    ``norm`` — term-size measure (``structural`` is the paper's).
    ``use_interarg`` — import inter-argument constraints ([VG90]); off
    reproduces the pre-[VG90] behaviour on Example 3.1.
    ``allow_negative_theta`` — Appendix C search instead of the 0/1
    assignment.
    ``feasibility`` — name of the :mod:`repro.solve` backend deciding
    final lambda feasibility (``simplex`` or ``fm``), or an
    :class:`~repro.solve.LPBackend` instance.  Resolved — and
    validated — when the analyzer is constructed.
    ``prune_fm`` — redundancy pruning inside Fourier–Motzkin.
    ``fm_kernel`` — ``"int"`` (default) runs Fourier–Motzkin solves on
    the dense integer row kernel; ``"array"`` runs the vectorized
    numpy kernel (batched per-SCC LP dispatch included), degrading to
    ``"int"`` when numpy is missing or int64 would overflow;
    ``"reference"`` keeps the original object pipeline (differential
    testing / ablation).  All three produce byte-identical verdicts
    and witnesses.
    ``method`` — name of the :mod:`repro.methods` termination prover
    drivers dispatch to (``argsize``, ``sizechange``, ``nonterm``, or
    ``portfolio``).  ``argsize`` is the paper's pipeline and the
    default; the setting participates in request/certificate cache
    keys.  Validated at construction like ``feasibility``.
    ``eliminate_w`` — True (default) runs the paper's practical route:
    Fourier–Motzkin eliminates the undistinguished dual multipliers per
    rule-subgoal pair ("in practice, Fourier-Motzkin elimination is
    simple and adequate").  False keeps them — the paper's theoretical
    variant: "to claim a theoretical polynomial time bound, we stop
    with Eq. 8 and give the undistinguished variables w unique names" —
    and one big LP decides feasibility.  Identical verdicts, different
    cost profile.
    """

    norm: str = "structural"
    use_interarg: bool = True
    allow_negative_theta: bool = False
    feasibility: str = "simplex"
    prune_fm: bool = True
    fm_kernel: str = "int"
    eliminate_w: bool = True
    method: str = "argsize"
    inference: InferenceSettings = field(default_factory=InferenceSettings)

    def validate(self):
        """Raise :class:`~repro.errors.AnalysisError` on unknown norm
        or feasibility backend; return ``(norm, backend)`` resolved."""
        return resolve_settings(self)


class TerminationAnalyzer:
    """Reusable analyzer bound to one program and settings.

    Thin façade over :class:`~repro.core.pipeline.AnalysisPipeline`:
    settings are validated (norm + backend resolved) here, analyses
    are delegated there.  Reusing one analyzer across modes reuses the
    inferred inter-argument environment and the dualization cache.
    """

    def __init__(self, program, settings=None, certificate_cache=None):
        self.settings = settings or AnalyzerSettings()
        self.pipeline = AnalysisPipeline(
            program, self.settings, certificate_cache=certificate_cache
        )
        self.program = self.pipeline.program
        self._norm = self.pipeline.norm

    # -- inter-argument constraints -------------------------------------------

    @property
    def environment(self):
        """Inter-argument constraints, inferred on first use."""
        return self.pipeline.environment

    def use_external_constraints(self, environment):
        """Install externally supplied inter-argument constraints
        (the paper's "supplied by other external means")."""
        self.pipeline.use_external_constraints(environment)

    # -- analysis -----------------------------------------------------------------

    def analyze(self, root_indicator, root_mode, request_id=None):
        """Analyze termination of the *root_mode* query on the root.

        *request_id* threads an external correlation id onto the root
        span (see :meth:`AnalysisPipeline.run`).
        """
        return self.pipeline.run(
            root_indicator, root_mode, request_id=request_id
        )

    def analyze_scc(self, members, trace=None):
        """Run Sections 3–6 for one recursive SCC of adorned nodes."""
        return self.pipeline.analyze_scc(members, trace=trace)


def analyze_program(program, root, mode, settings=None):
    """Convenience entry point.

    >>> from repro.lp import parse_program
    >>> program = parse_program(
    ...     "append([], Y, Y).\\n"
    ...     "append([X|Xs], Y, [X|Zs]) :- append(Xs, Y, Zs).")
    >>> analyze_program(program, ("append", 3), "bbf").status
    'PROVED'
    """
    if isinstance(program, str):
        program = Program.from_text(program)
    analyzer = TerminationAnalyzer(program, settings=settings)
    return analyzer.analyze(tuple(root), mode)
