"""The termination analyzer: SCC-at-a-time orchestration.

:func:`analyze_program` (or :class:`TerminationAnalyzer` for more
control) runs the full pipeline of the paper:

1. build the *adorned* dependency graph from the query mode — each
   (predicate, bound/free pattern) pair is its own analysis node, which
   realizes the paper's preprocessing assumption that "every predicate
   has the same bound-free adornment";
2. infer inter-argument constraints for every predicate (the [VG90]
   substrate, run for the whole program up front — Section 6.2 requires
   the SCC's own constraints to be available *before* its termination
   analysis);
3. per recursive SCC of the adorned graph (bottom-up): build Eq. 1
   systems for every rule × recursive-subgoal combination, dualize to
   lambda constraints, choose thetas, reject zero-weight cycles, and
   test feasibility; a feasible point yields the lambda certificate;
4. aggregate: the program terminates on the queried mode if every
   reachable recursive SCC has a certificate.

The verdict is ``PROVED`` or ``UNKNOWN`` — the method is a sufficient
condition (Section 7); ``UNKNOWN`` never means "diverges".
"""

from __future__ import annotations

from dataclasses import dataclass, field
from fractions import Fraction

from repro.errors import AnalysisError
from repro.lp.program import Program
from repro.linalg.constraints import ConstraintSystem
from repro.linalg.linexpr import LinearExpr
from repro.linalg.simplex import feasible_point
from repro.graph.scc import is_recursive_component, strongly_connected_components
from repro.sizes.norms import get_norm
from repro.interarg import (
    InferenceSettings,
    SizeEnvironment,
    infer_interargument_constraints,
)
from repro.core.adornment import AdornedPredicate, adorned_call_graph
from repro.core.certificate import SCCProof, TerminationProof
from repro.core.dual import (
    lam_var,
    lambda_nonnegativity,
    pair_constraints,
    theta_var,
)
from repro.core.rule_system import build_rule_systems
from repro.core.theta import (
    choose_thetas,
    path_constraints,
    substitute_thetas,
    zero_weight_cycle,
)

PROVED = "PROVED"
UNKNOWN = "UNKNOWN"


@dataclass
class AnalyzerSettings:
    """Analyzer configuration (every knob is ablatable).

    ``norm`` — term-size measure (``structural`` is the paper's).
    ``use_interarg`` — import inter-argument constraints ([VG90]); off
    reproduces the pre-[VG90] behaviour on Example 3.1.
    ``allow_negative_theta`` — Appendix C search instead of the 0/1
    assignment.
    ``feasibility`` — final lambda feasibility decided by ``simplex``
    or pure ``fm`` elimination.
    ``prune_fm`` — redundancy pruning inside Fourier–Motzkin.
    ``eliminate_w`` — True (default) runs the paper's practical route:
    Fourier–Motzkin eliminates the undistinguished dual multipliers per
    rule-subgoal pair ("in practice, Fourier-Motzkin elimination is
    simple and adequate").  False keeps them — the paper's theoretical
    variant: "to claim a theoretical polynomial time bound, we stop
    with Eq. 8 and give the undistinguished variables w unique names" —
    and one big LP decides feasibility.  Identical verdicts, different
    cost profile.
    """

    norm: str = "structural"
    use_interarg: bool = True
    allow_negative_theta: bool = False
    feasibility: str = "simplex"
    prune_fm: bool = True
    eliminate_w: bool = True
    inference: InferenceSettings = field(default_factory=InferenceSettings)


@dataclass
class SCCResult:
    """Outcome for one SCC: a proof, or a reason it was not found."""

    members: tuple            # AdornedPredicate nodes
    status: str
    proof: object = None
    reason: str = ""
    constraint_rows: int = 0

    @property
    def proved(self):
        """True when the verdict is PROVED."""
        return self.status == PROVED


@dataclass
class AnalysisResult:
    """Whole-program outcome."""

    program: Program
    root: tuple
    root_mode: str
    status: str
    scc_results: list = field(default_factory=list)
    nodes: tuple = ()
    environment: SizeEnvironment = None

    @property
    def proved(self):
        """True when the verdict is PROVED."""
        return self.status == PROVED

    @property
    def proof(self):
        """A :class:`TerminationProof` when the status is PROVED."""
        if not self.proved:
            return None
        norm = "structural"
        for result in self.scc_results:
            if result.proof is not None:
                norm = result.proof.norm
        certificate = TerminationProof(
            root=self.root, root_mode=self.root_mode, norm=norm
        )
        certificate.scc_proofs = [r.proof for r in self.scc_results]
        return certificate

    def failing_sccs(self):
        """The SCC results that were not proved."""
        return [r for r in self.scc_results if not r.proved]

    def describe(self):
        """Human-readable rendering."""
        lines = [
            "%s: %s/%d with mode %s"
            % (self.status, self.root[0], self.root[1], self.root_mode)
        ]
        for result in self.scc_results:
            if result.proved:
                lines.append(result.proof.describe())
            else:
                lines.append(
                    "SCC {%s}: %s — %s"
                    % (
                        ", ".join(str(m) for m in result.members),
                        result.status,
                        result.reason,
                    )
                )
        return "\n".join(lines)


class TerminationAnalyzer:
    """Reusable analyzer bound to one program and settings."""

    def __init__(self, program, settings=None):
        if not isinstance(program, Program):
            raise AnalysisError("expected a Program")
        self.program = program
        self.settings = settings or AnalyzerSettings()
        self._norm = get_norm(self.settings.norm)
        self._environment = None

    # -- inter-argument constraints -------------------------------------------

    @property
    def environment(self):
        """Inter-argument constraints, inferred on first use."""
        if self._environment is None:
            if self.settings.use_interarg:
                self._environment = infer_interargument_constraints(
                    self.program,
                    norm=self._norm,
                    settings=self.settings.inference,
                )
            else:
                self._environment = SizeEnvironment()
        return self._environment

    def use_external_constraints(self, environment):
        """Install externally supplied inter-argument constraints
        (the paper's "supplied by other external means")."""
        self._environment = environment

    # -- analysis -----------------------------------------------------------------

    def analyze(self, root_indicator, root_mode):
        """Analyze termination of the *root_mode* query on the root."""
        root_indicator = tuple(root_indicator)
        graph, nodes = adorned_call_graph(
            self.program, root_indicator, root_mode
        )

        defined = self.program.defined_indicators()
        scc_results = []
        overall = PROVED
        for component in strongly_connected_components(graph):
            members = tuple(
                node for node in component if node.indicator in defined
            )
            if not members:
                continue  # EDB leaves: finite relations, nothing to prove
            if not is_recursive_component(graph, component):
                scc_results.append(
                    SCCResult(
                        members=members,
                        status=PROVED,
                        proof=SCCProof(
                            members=members,
                            norm=self._norm.name,
                            lambdas={},
                            thetas={},
                            trivially_nonrecursive=True,
                        ),
                    )
                )
                continue
            result = self.analyze_scc(members)
            scc_results.append(result)
            if not result.proved:
                overall = UNKNOWN
        return AnalysisResult(
            program=self.program,
            root=root_indicator,
            root_mode=str(root_mode),
            status=overall,
            scc_results=scc_results,
            nodes=tuple(nodes),
            environment=self.environment,
        )

    def analyze_scc(self, members):
        """Run Sections 3–6 for one recursive SCC of adorned nodes."""
        members = tuple(members)
        bound_positions = {node: node.bound_positions() for node in members}
        if any(not positions for positions in bound_positions.values()):
            free_nodes = [
                str(node) for node in members if not bound_positions[node]
            ]
            return SCCResult(
                members=members,
                status=UNKNOWN,
                reason="no bound arguments on %s; no measure can decrease"
                % ", ".join(free_nodes),
            )

        systems = []
        for node in members:
            for clause in self.program.clauses_for(node.indicator):
                systems.extend(
                    build_rule_systems(
                        clause, node, members, self.environment, self._norm
                    )
                )
        if not systems:
            return SCCResult(
                members=members,
                status=UNKNOWN,
                reason="no rule/recursive-subgoal combinations found",
            )

        combined = ConstraintSystem()
        for system in systems:
            combined.extend(
                pair_constraints(
                    system,
                    eliminate_w=self.settings.eliminate_w,
                    prune=self.settings.prune_fm,
                )
            )
        lambda_system = lambda_nonnegativity(
            (node, bound_positions[node]) for node in members
        )

        edges = [system.edge for system in systems]
        if self.settings.allow_negative_theta:
            return self._solve_negative_theta(
                members, systems, combined, lambda_system, edges,
                bound_positions,
            )

        thetas = choose_thetas(edges, combined, lambda_system)
        cycle = zero_weight_cycle(members, thetas)
        if cycle is not None:
            return SCCResult(
                members=members,
                status=UNKNOWN,
                reason="zero-weight cycle %s — strong evidence of "
                "nontermination (Section 6.1)"
                % " -> ".join(str(node) for node in cycle),
                constraint_rows=len(combined),
            )

        final = substitute_thetas(combined, thetas)
        final.extend(lambda_system)
        point = self._solve_feasibility(final)
        if point is None:
            return SCCResult(
                members=members,
                status=UNKNOWN,
                reason="lambda constraint system infeasible",
                constraint_rows=len(final),
            )

        lambdas = _extract_lambdas(point, members, bound_positions)
        proof = SCCProof(
            members=members,
            norm=self._norm.name,
            lambdas=lambdas,
            thetas=thetas,
            rule_systems=systems,
        )
        return SCCResult(
            members=members,
            status=PROVED,
            proof=proof,
            constraint_rows=len(final),
        )

    def _solve_negative_theta(
        self, members, systems, combined, lambda_system, edges,
        bound_positions,
    ):
        """Appendix C: thetas as rational unknowns + path constraints."""
        final = ConstraintSystem(combined)
        final.extend(lambda_system)
        final.extend(
            path_constraints(members, edges)
        )
        point = feasible_point(final)
        if point is None:
            return SCCResult(
                members=members,
                status=UNKNOWN,
                reason="infeasible even with negative theta weights "
                "(Appendix C)",
                constraint_rows=len(final),
            )
        thetas = {
            edge: point.get(theta_var(*edge), Fraction(0))
            for edge in set(edges)
        }
        lambdas = _extract_lambdas(point, members, bound_positions)
        proof = SCCProof(
            members=members,
            norm=self._norm.name,
            lambdas=lambdas,
            thetas=thetas,
            rule_systems=systems,
        )
        return SCCResult(
            members=members,
            status=PROVED,
            proof=proof,
            constraint_rows=len(final),
        )

    def _solve_feasibility(self, system):
        """A feasible lambda point, via simplex or pure FM (ablation)."""
        if self.settings.feasibility == "simplex":
            return feasible_point(system)
        if self.settings.feasibility != "fm":
            raise AnalysisError(
                "feasibility must be 'simplex' or 'fm', got %r"
                % self.settings.feasibility
            )
        return _fm_feasible_point(system, prune=self.settings.prune_fm)


def _fm_feasible_point(system, prune=True):
    """Feasibility + witness via Fourier–Motzkin back-substitution.

    FM preserves satisfiability at every step, so the system is
    feasible iff the fully eliminated system has no contradiction row;
    a witness is recovered by assigning the variables in reverse
    elimination order, each within the interval its stage allows.
    """
    from repro.linalg.fourier_motzkin import eliminate

    order = sorted(system.variables(), key=repr)
    stages = [system]
    for var in order:
        stages.append(eliminate(stages[-1], var, prune=prune))
    if stages[-1].has_contradiction_row():
        return None
    point = {}
    for var, stage in zip(reversed(order), reversed(stages[:-1])):
        point[var] = _pick_value(stage, var, point)
    return point


def _pick_value(system, var, partial):
    """Choose a value for *var* consistent with *system*, where
    *partial* already fixes every other variable of *system*."""
    lower = None
    upper = None
    for constraint in system:
        coeff = constraint.expr.coefficient(var)
        if coeff == 0:
            continue
        rest = constraint.expr - LinearExpr.of(var, coeff)
        rest_value = rest.evaluate(partial)
        bound = -rest_value / coeff
        if constraint.is_equality():
            return bound
        if coeff > 0:
            lower = bound if lower is None else max(lower, bound)
        else:
            upper = bound if upper is None else min(upper, bound)
    if lower is not None and upper is not None:
        return (lower + upper) / 2
    if lower is not None:
        return lower
    if upper is not None:
        return upper
    return Fraction(0)


def _extract_lambdas(point, members, bound_positions):
    lambdas = {}
    for node in members:
        weights = {}
        for position in bound_positions[node]:
            weights[position] = point.get(lam_var(node, position), Fraction(0))
        lambdas[node] = weights
    return lambdas


def analyze_program(program, root, mode, settings=None):
    """Convenience entry point.

    >>> from repro.lp import parse_program
    >>> program = parse_program(
    ...     "append([], Y, Y).\\n"
    ...     "append([X|Xs], Y, [X|Zs]) :- append(Xs, Y, Zs).")
    >>> analyze_program(program, ("append", 3), "bbf").status
    'PROVED'
    """
    if isinstance(program, str):
        program = Program.from_text(program)
    analyzer = TerminationAnalyzer(program, settings=settings)
    return analyzer.analyze(tuple(root), mode)
