"""LP duality: from Eq. 1 systems to linear constraints on lambda.

The decrease requirement (Eq. 2) is

    for all x, y, phi satisfying Eq. 1:
        lambda_i . x  >=  lambda_j . y  +  theta_ij .

Substituting ``x = a + A.phi`` and ``y = b + B.phi`` (and noting that
``x, y >= 0`` is automatic because a, A, b, B and phi are nonnegative —
the observation the paper uses to eliminate the dual variables u and v
in closed form), the requirement becomes: the affine function

    h(phi) = (lambda.A - mu.B).phi + (lambda.a - mu.b - theta)

is nonnegative over ``S = { phi >= 0 : imported constraints hold }``.
By the affine form of Farkas' lemma (= LP duality, the paper's Eq. 5–9)
this holds iff there are multipliers ``w_k`` — nonnegative for imported
inequalities, free for equalities — with, coefficient-wise,

    lambda.A[v] - mu.B[v] - sum_k w_k G[k][v]  >=  0      (each phi var v)
    lambda.a    - mu.b    - sum_k w_k g_k      >=  theta  (constant row)

(the "only if" direction needs S nonempty; when S is empty the rule can
never reach the recursive call and the certificate is vacuously fine —
the analyzer keeps the sufficient direction either way, matching the
paper's "sufficient condition" caveat).

Everything is *linear in (lambda, w, theta)*, the paper's key
observation, so one Fourier–Motzkin pass eliminating the undistinguished
``w`` leaves constraints over the distinguished lambda (and theta)
variables only — the paper's Eq. 9 after the practical elimination step.
"""

from __future__ import annotations

import itertools

from repro.linalg.constraints import Constraint, ConstraintSystem
from repro.linalg.fourier_motzkin import eliminate_all
from repro.linalg.linexpr import LinearExpr

_pair_counter = itertools.count(1)


def lam_var(node, position):
    """The lambda multiplier for adorned predicate *node*'s bound
    argument at 1-based *position* (paper: a component of lambda_i)."""
    return ("lam", node.name, node.arity, str(node.adornment), position)


def theta_var(head_node, subgoal_node):
    """The theta offset variable for adorned dependency edge i -> j."""
    return (
        "theta",
        head_node.name,
        head_node.arity,
        str(head_node.adornment),
        subgoal_node.name,
        subgoal_node.arity,
        str(subgoal_node.adornment),
    )


def w_var(pair_id, k):
    """The k-th dual multiplier variable of one pair."""
    return ("w", pair_id, k)


def pair_constraints(system, eliminate_w=True, prune=True):
    """Lambda/theta constraints for one :class:`RuleSizeSystem`.

    Returns a :class:`ConstraintSystem` over ``lam_var(...)`` and the
    pair's ``theta_var(...)``; with ``eliminate_w=False`` the raw
    system (including the w multipliers) is returned — used by the
    polynomial-bound variant the paper mentions ("to claim a
    theoretical polynomial time bound, we stop with Eq. 8") and by the
    ablation benchmarks.
    """
    pair_id = next(_pair_counter)
    lam_head = [lam_var(system.head_node, p) for p in system.x_positions]
    lam_sub = [lam_var(system.subgoal_node, p) for p in system.y_positions]
    theta = theta_var(system.head_node, system.subgoal_node)

    constraints = ConstraintSystem()
    w_names = []

    # Coefficient rows, one per phi variable.
    for phi in system.phi_variables():
        expr = LinearExpr()
        for lam, x_expr in zip(lam_head, system.x_exprs):
            coefficient = x_expr.coefficient(phi)
            if coefficient:
                expr = expr + LinearExpr.of(lam, coefficient)
        for mu, y_expr in zip(lam_sub, system.y_exprs):
            coefficient = y_expr.coefficient(phi)
            if coefficient:
                expr = expr - LinearExpr.of(mu, coefficient)
        for k, imported in enumerate(system.imported):
            coefficient = imported.expr.coefficient(phi)
            if coefficient:
                expr = expr - LinearExpr.of(w_var(pair_id, k), coefficient)
        constraints.add(Constraint.ge(expr))

    # Constant row: lambda.a - mu.b - w.g - theta >= 0.
    expr = LinearExpr()
    for lam, x_expr in zip(lam_head, system.x_exprs):
        if x_expr.const:
            expr = expr + LinearExpr.of(lam, x_expr.const)
    for mu, y_expr in zip(lam_sub, system.y_exprs):
        if y_expr.const:
            expr = expr - LinearExpr.of(mu, y_expr.const)
    for k, imported in enumerate(system.imported):
        if imported.expr.const:
            expr = expr - LinearExpr.of(w_var(pair_id, k), imported.expr.const)
    expr = expr - LinearExpr.of(theta)
    constraints.add(Constraint.ge(expr))

    # Multiplier sign conditions: w_k >= 0 for imported inequalities.
    for k, imported in enumerate(system.imported):
        w_names.append(w_var(pair_id, k))
        if not imported.is_equality():
            constraints.add(Constraint.ge(LinearExpr.of(w_var(pair_id, k))))

    if not eliminate_w:
        return constraints

    return eliminate_all(constraints, w_names, prune=prune)


def lambda_nonnegativity(nodes_with_positions):
    """Constraints ``lam >= 0`` (paper's Eq. 7) for every (adorned
    node, bound positions) pair."""
    system = ConstraintSystem()
    for node, positions in nodes_with_positions:
        for position in positions:
            system.add(Constraint.ge(LinearExpr.of(lam_var(node, position))))
    return system
