"""Human-readable analysis reports.

Renders an :class:`~repro.core.analyzer.AnalysisResult` — verdict,
per-SCC measures and thetas, the inter-argument constraints used, the
Eq. 1 systems, and (with ``show_stats``) the pipeline stage trace —
in a format suitable for terminal output or inclusion in
EXPERIMENTS.md.
"""

from __future__ import annotations


def render_stage_table(trace):
    """The per-stage instrumentation table for one or more analyses.

    *trace* is an :class:`~repro.core.pipeline.AnalysisTrace`; columns
    are wall time, constraint rows in/out, memoization hits/misses,
    and backend solver work (simplex pivots / FM eliminations).
    """
    return "Pipeline stage trace:\n" + trace.describe()


def render_report(result, show_rule_systems=False, show_environment=False,
                  show_stats=False):
    """Full textual report for an analysis result."""
    lines = []
    lines.append("=" * 64)
    lines.append(
        "Termination analysis: %s/%d mode %s"
        % (result.root[0], result.root[1], result.root_mode)
    )
    lines.append("Verdict: %s" % result.status)
    method = getattr(result, "method", "argsize") or "argsize"
    if method != "argsize":
        lines.append("Method: %s" % method)
    lines.append("=" * 64)

    if result.nodes:
        lines.append("Adorned predicates reached:")
        for node in sorted(result.nodes, key=str):
            lines.append("  %s" % node)

    for scc in result.scc_results:
        lines.append("-" * 64)
        if scc.proved and scc.proof is not None:
            lines.append(scc.proof.describe())
            if show_rule_systems and scc.proof.rule_systems:
                for system in scc.proof.rule_systems:
                    lines.append("")
                    lines.extend(
                        "  " + line for line in system.describe().splitlines()
                    )
        else:
            provenance = getattr(scc, "method", "")
            lines.append(
                "SCC {%s}: %s%s"
                % (", ".join(str(m) for m in scc.members), scc.status,
                   " [%s]" % provenance if provenance else "")
            )
            if scc.reason:
                lines.append("  reason: %s" % scc.reason)

    if show_environment and result.environment is not None:
        lines.append("-" * 64)
        lines.append("Inter-argument constraints used:")
        text = str(result.environment)
        lines.extend("  " + line for line in text.splitlines())

    if show_stats and result.trace is not None:
        lines.append("-" * 64)
        lines.extend(render_stage_table(result.trace).splitlines())

    lines.append("=" * 64)
    return "\n".join(lines)


def render_verdict_table(rows, headers=("program", "mode", "verdict")):
    """A plain-text table; *rows* is a list of tuples.

    Rows shorter than *headers* are right-padded with empty cells, so
    two-valued callers keep working when a sweep appends a ``method``
    provenance column only some rows carry.
    """
    rows = [
        tuple(str(cell) for cell in row)
        + ("",) * (len(headers) - len(row))
        for row in rows
    ]
    widths = [len(h) for h in headers]
    for row in rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    def fmt(row):
        """Pad one row to the column widths."""
        return "  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row))
    lines = [fmt(headers), fmt(tuple("-" * w for w in widths))]
    lines.extend(fmt(row) for row in rows)
    return "\n".join(lines)
