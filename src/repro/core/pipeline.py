"""The staged analysis pipeline with per-stage instrumentation.

The Sohn & Van Gelder analysis decomposes into named stages:

========================  ====================================================
``adorn``                 build the adorned dependency graph + its SCC DAG
``interarg``              infer (or recall) inter-argument constraints [VG90]
``rule_systems``          assemble Eq. 1 per rule × recursive subgoal
``dualize``               LP-dualize each pair to lambda/theta constraints
``theta``                 choose theta offsets / build Appendix C paths
``solve``                 final lambda feasibility via a pluggable backend
``certify``               extract the lambda certificate per SCC
========================  ====================================================

:class:`AnalysisPipeline` composes them (program-level stages once per
run, SCC-level stages per recursive SCC), timing each into a
:class:`StageTrace` that :class:`AnalysisResult` carries as ``.trace``
— surfaced by ``render_report(..., show_stats=True)`` and
``repro-analyze --stats``.

Two memoization layers make repeated analyses (``--all-modes`` sweeps,
the corpus drivers) cheap:

- **dualization cache** — ``pair_constraints`` output keyed by the
  structural fingerprint of the rule system (adorned head/subgoal,
  bound positions, size polynomials, imported constraints).  The same
  Eq. 1 system reached through different query modes or re-parsed
  program text dualizes once.
- **environment cache** — inferred :class:`SizeEnvironment` objects
  keyed by (alpha-invariant program fingerprint, norm, inference
  settings), so analyzing a second mode of the same program skips the
  polyhedral fixpoint entirely.

Both caches are process-wide, bounded, and sound: the cached value is
a pure function of the key.  :func:`clear_caches` resets them (used by
benchmarks measuring cold/warm deltas).
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass, field
from fractions import Fraction
from time import perf_counter

from repro.errors import AnalysisError
from repro.obs import METRICS, Tracer, span
from repro.lp.program import Program
from repro.lp.terms import Struct, Var
from repro.linalg.constraints import ConstraintSystem
from repro.linalg.fourier_motzkin import KERNELS, use_kernel
from repro.graph.scc import is_recursive_component, strongly_connected_components
from repro.sizes.norms import get_norm
from repro.solve import BatchLPBackend, get_backend
from repro.interarg import (
    SizeEnvironment,
    infer_interargument_constraints,
)
from repro.core.adornment import adorned_call_graph
from repro.core.certificate import SCCProof, TerminationProof
from repro.core.dual import (
    lam_var,
    lambda_nonnegativity,
    pair_constraints,
    theta_var,
)
from repro.core.rule_system import build_rule_systems
from repro.core.theta import (
    choose_thetas,
    path_constraints,
    substitute_thetas,
    zero_weight_cycle,
)

PROVED = "PROVED"
UNKNOWN = "UNKNOWN"
#: Termination *disproved*: a non-termination detector exhibited a
#: looping derivation.  Only :mod:`repro.methods` provers emit it —
#: the argument-size pipeline itself stays two-valued (its UNKNOWN
#: never means "diverges").
DISPROVED = "DISPROVED"

#: Stage names in execution order; ``adorn``/``interarg`` run once per
#: analysis, the rest once per recursive SCC.  ``fingerprint`` only
#: runs when a certificate cache is installed: it computes the SCC's
#: content address, consults the cache, and re-validates any reused
#: PROVED certificate.
STAGES = (
    "adorn",
    "interarg",
    "fingerprint",
    "rule_systems",
    "dualize",
    "theta",
    "solve",
    "certify",
)


# -- instrumentation ----------------------------------------------------------


@dataclass
class StageTrace:
    """Accumulated cost counters for one named stage.

    ``rows_in``/``rows_out`` are constraint-row counts entering and
    leaving the stage; ``cache_hits``/``cache_misses`` count memoized
    sub-results (dualizations, environments); ``pivots`` and
    ``eliminations`` aggregate backend solver work.
    """

    stage: str
    calls: int = 0
    wall_time: float = 0.0
    rows_in: int = 0
    rows_out: int = 0
    cache_hits: int = 0
    cache_misses: int = 0
    pivots: int = 0
    eliminations: int = 0

    def merge(self, other):
        """Fold another record for the same stage into this one."""
        self.calls += other.calls
        self.wall_time += other.wall_time
        self.rows_in += other.rows_in
        self.rows_out += other.rows_out
        self.cache_hits += other.cache_hits
        self.cache_misses += other.cache_misses
        self.pivots += other.pivots
        self.eliminations += other.eliminations


#: StageTrace counter fields mirrored into stage-span counters.
_STAGE_COUNTERS = (
    "calls", "rows_in", "rows_out", "cache_hits", "cache_misses",
    "pivots", "eliminations",
)

#: Span-name prefix marking the spans stage totals are derived from.
_STAGE_SPAN_PREFIX = "stage."


class AnalysisTrace:
    """Per-stage instrumentation for one (or several merged) analyses.

    Since the observability rework this is a *view* over a span tree:
    :attr:`tracer` records hierarchical spans (``analyze`` roots,
    ``scc`` groups, ``stage.*`` leaves, plus whatever the backends and
    caches attach below them), and the per-stage
    :class:`StageTrace` totals the old API exposed — :meth:`stage`,
    :meth:`stages`, :attr:`total_time` — are derived on demand by
    folding the ``stage.*`` spans.  ``--trace-out`` serializes the
    same tree through :mod:`repro.obs.sinks`, so the ``--stats`` table
    and the JSONL trace can never disagree.
    """

    def __init__(self):
        self.tracer = Tracer()

    @property
    def roots(self):
        """The recorded root spans (one ``analyze`` span per run)."""
        return tuple(self.tracer.roots)

    @contextmanager
    def span(self, name, **attrs):
        """Open a span in this trace's tree (non-stage grouping —
        e.g. the per-SCC spans the pipeline wraps its stages in)."""
        with self.tracer.span(name, **attrs) as node:
            yield node

    @contextmanager
    def timed(self, stage):
        """Context manager timing one execution of *stage*; the yielded
        :class:`StageTrace` collects the stage's counters."""
        event = StageTrace(stage=stage, calls=1)
        with self.tracer.span(
            _STAGE_SPAN_PREFIX + stage, stage=stage
        ) as node:
            try:
                yield event
            finally:
                for name in _STAGE_COUNTERS:
                    value = getattr(event, name)
                    if value:
                        node.counters[name] = (
                            node.counters.get(name, 0) + value
                        )

    def add(self, event):
        """Record an already-measured :class:`StageTrace` event as a
        closed stage span (kept for callers that timed work
        themselves)."""
        node = None
        with self.tracer.span(
            _STAGE_SPAN_PREFIX + event.stage, stage=event.stage
        ) as node:
            pass
        node.started = 0.0
        node.wall_s = event.wall_time
        for name in _STAGE_COUNTERS:
            value = getattr(event, name)
            if value:
                node.counters[name] = value

    def stage(self, name):
        """The accumulated :class:`StageTrace` for *name*, derived
        from the span tree."""
        total = StageTrace(stage=name)
        wanted = _STAGE_SPAN_PREFIX + name
        for node in self.tracer.iter_spans():
            if node.name != wanted:
                continue
            total.calls += node.counters.get("calls", 1)
            total.wall_time += node.wall_s
            counters = node.counters
            total.rows_in += counters.get("rows_in", 0)
            total.rows_out += counters.get("rows_out", 0)
            total.cache_hits += counters.get("cache_hits", 0)
            total.cache_misses += counters.get("cache_misses", 0)
            total.pivots += counters.get("pivots", 0)
            total.eliminations += counters.get("eliminations", 0)
        return total

    def stages(self):
        """Stages that actually ran, in pipeline order."""
        derived = tuple(self.stage(name) for name in STAGES)
        return tuple(s for s in derived if s.calls)

    def merge(self, other):
        """Fold another trace into this one (e.g. across modes):
        the other trace's root spans are grafted into this forest, so
        derived stage totals accumulate exactly as the old flat
        counters did."""
        self.tracer.adopt(other.tracer.roots)
        return self

    @property
    def total_time(self):
        """Wall time summed over every stage, in seconds."""
        return sum(s.wall_time for s in self.stages())

    @property
    def cache_hits(self):
        """Cache hits summed over every stage."""
        return sum(s.cache_hits for s in self.stages())

    def describe(self):
        """Aligned per-stage table (the ``--stats`` rendering)."""
        headers = (
            "stage", "calls", "ms", "rows-in", "rows-out",
            "cache h/m", "pivots", "elims",
        )
        rows = []
        for s in self.stages():
            rows.append((
                s.stage,
                str(s.calls),
                "%.2f" % (s.wall_time * 1000),
                str(s.rows_in),
                str(s.rows_out),
                "%d/%d" % (s.cache_hits, s.cache_misses),
                str(s.pivots),
                str(s.eliminations),
            ))
        rows.append((
            "total",
            str(sum(s.calls for s in self.stages())),
            "%.2f" % (self.total_time * 1000),
            str(sum(s.rows_in for s in self.stages())),
            str(sum(s.rows_out for s in self.stages())),
            "%d/%d" % (
                sum(s.cache_hits for s in self.stages()),
                sum(s.cache_misses for s in self.stages()),
            ),
            str(sum(s.pivots for s in self.stages())),
            str(sum(s.eliminations for s in self.stages())),
        ))
        widths = [len(h) for h in headers]
        for row in rows:
            for i, cell in enumerate(row):
                widths[i] = max(widths[i], len(cell))

        def fmt(row):
            return "  ".join(
                cell.ljust(widths[i]) if i == 0 else cell.rjust(widths[i])
                for i, cell in enumerate(row)
            )

        lines = [fmt(headers), fmt(tuple("-" * w for w in widths))]
        lines.extend(fmt(row) for row in rows)
        effectiveness = self.describe_caches()
        if effectiveness:
            lines.append("")
            lines.extend(effectiveness.splitlines())
        return "\n".join(lines)

    def describe_caches(self):
        """Cache-effectiveness summary (dualization + environment),
        derived from the dualize/interarg stage counters; empty string
        when neither cache was consulted."""
        lines = []
        for label, stage_name in (
            ("dualization cache", "dualize"),
            ("environment cache", "interarg"),
            ("certificate cache", "fingerprint"),
        ):
            record = self.stage(stage_name)
            consulted = record.cache_hits + record.cache_misses
            if not consulted:
                continue
            lines.append(
                "  %-18s %d hits / %d misses  (%.0f%% hit rate)"
                % (
                    label,
                    record.cache_hits,
                    record.cache_misses,
                    100.0 * record.cache_hits / consulted,
                )
            )
        if not lines:
            return ""
        return "\n".join(["cache effectiveness:"] + lines)


# -- results ------------------------------------------------------------------


@dataclass
class SCCResult:
    """Outcome for one SCC: a proof, or a reason it was not found.

    ``cache`` records how the incremental certificate cache treated
    this SCC — ``""`` (no cache consulted / nonrecursive), ``"hit"``
    (certificate reused), ``"miss"`` (proved fresh, published), or
    ``"rejected"`` (a cached certificate failed re-verification and
    the SCC was re-proved); ``fingerprint`` is the SCC's content
    address when one was computed.  Neither field is exported — the
    verdict payload stays a pure function of the request.
    """

    members: tuple            # AdornedPredicate nodes
    status: str
    proof: object = None
    reason: str = ""
    constraint_rows: int = 0
    cache: str = ""
    fingerprint: str = ""
    #: Which :mod:`repro.methods` prover decided this SCC (portfolio
    #: provenance); ``""`` outside the methods layer.
    method: str = ""

    @property
    def proved(self):
        """True when the verdict is PROVED."""
        return self.status == PROVED


@dataclass
class AnalysisResult:
    """Whole-program outcome, plus the stage trace that produced it."""

    program: Program
    root: tuple
    root_mode: str
    status: str
    scc_results: list = field(default_factory=list)
    nodes: tuple = ()
    environment: SizeEnvironment = None
    norm: str = "structural"
    trace: AnalysisTrace = None
    #: The :mod:`repro.methods` prover that produced this result.  The
    #: pipeline itself *is* the argument-size method, hence the default.
    method: str = "argsize"

    @property
    def proved(self):
        """True when the verdict is PROVED."""
        return self.status == PROVED

    @property
    def proof(self):
        """A :class:`TerminationProof` when the status is PROVED."""
        if not self.proved:
            return None
        if any(r.proof is None for r in self.scc_results):
            # Proved by a method that argues termination without a
            # lambda certificate (e.g. size-change closure).
            return None
        certificate = TerminationProof(
            root=self.root, root_mode=self.root_mode, norm=self.norm
        )
        certificate.scc_proofs = [r.proof for r in self.scc_results]
        return certificate

    @property
    def sccs_reused(self):
        """Recursive SCCs answered from the certificate cache."""
        return sum(1 for r in self.scc_results if r.cache == "hit")

    @property
    def sccs_reproved(self):
        """Recursive SCCs proved fresh despite a cache being consulted
        (misses plus rejected certificates)."""
        return sum(
            1 for r in self.scc_results if r.cache in ("miss", "rejected")
        )

    @property
    def sccs_rejected(self):
        """Reused certificates that failed re-verification (a subset
        of :attr:`sccs_reproved`)."""
        return sum(1 for r in self.scc_results if r.cache == "rejected")

    def failing_sccs(self):
        """The SCC results that were not proved."""
        return [r for r in self.scc_results if not r.proved]

    def describe(self):
        """Human-readable rendering."""
        lines = [
            "%s: %s/%d with mode %s"
            % (self.status, self.root[0], self.root[1], self.root_mode)
        ]
        for result in self.scc_results:
            if result.proved and result.proof is not None:
                lines.append(result.proof.describe())
            else:
                lines.append(
                    "SCC {%s}: %s — %s"
                    % (
                        ", ".join(str(m) for m in result.members),
                        result.status,
                        result.reason,
                    )
                )
        return "\n".join(lines)


# -- memoization --------------------------------------------------------------

_DUAL_CACHE = {}
_DUAL_CACHE_LIMIT = 4096

_ENV_CACHE = {}
_ENV_CACHE_LIMIT = 128


def clear_caches():
    """Drop the process-wide dualization and environment caches."""
    _DUAL_CACHE.clear()
    _ENV_CACHE.clear()


def _canonical_term(term, names):
    if isinstance(term, Var):
        index = names.get(term.name)
        if index is None:
            index = names[term.name] = len(names)
        return "_%d" % index
    if isinstance(term, Struct):
        return "%s(%s)" % (
            term.functor,
            ",".join(_canonical_term(arg, names) for arg in term.args),
        )
    return str(term)


def program_fingerprint(program):
    """Alpha-invariant identity of a program's clauses.

    Variables are numbered per clause in first-occurrence order, so two
    parses of the same source — whose anonymous ``_`` variables get
    distinct gensym names — fingerprint identically.  Mode declarations
    do not participate: they steer drivers, not the analysis itself.
    """
    lines = []
    for clause in program.clauses:
        names = {}
        head = _canonical_term(clause.head, names)
        body = ",".join(
            ("" if literal.positive else "\\+") +
            _canonical_term(literal.atom, names)
            for literal in clause.body
        )
        lines.append(head + ":-" + body)
    return "\n".join(lines)


def _canonical_expr(expr, names):
    """Hashable form of a size polynomial with ``("sz", name)``
    variables replaced by first-occurrence indices."""
    terms = []
    for var, coeff in expr.items():
        if isinstance(var, tuple) and len(var) == 2 and var[0] == "sz":
            index = names.get(var[1])
            if index is None:
                index = names[var[1]] = len(names)
            var = ("sz", index)
        terms.append((var, coeff))
    return (tuple(terms), expr.const)


def rule_system_fingerprint(system):
    """Alpha-invariant identity of an Eq. 1 system.

    Two rule systems with equal fingerprints produce identical
    ``pair_constraints`` output (under the same elimination settings):
    the dualization reads only the adorned endpoints, the bound
    positions, the size polynomials, and the imported constraints —
    all captured here.  Clause variable names are canonicalized away
    (the dual output mentions only ``lam``/``theta`` variables keyed by
    adorned predicates, never clause variables), so re-parsed program
    text — whose anonymous ``_`` variables gensym differently — still
    hits.
    """
    names = {}
    return (
        system.head_node,
        system.subgoal_node,
        system.x_positions,
        system.y_positions,
        tuple(_canonical_expr(e, names) for e in system.x_exprs),
        tuple(_canonical_expr(e, names) for e in system.y_exprs),
        tuple(
            (c.relation, _canonical_expr(c.expr, names))
            for c in system.imported
        ),
    )


def cached_pair_constraints(system, eliminate_w=True, prune=True):
    """Memoized :func:`~repro.core.dual.pair_constraints`.

    Returns ``(constraint_system, cache_hit)``.  Only the
    ``eliminate_w=True`` route is cached: it is the expensive one (a
    Fourier–Motzkin projection per pair) and its output contains no
    pair-local ``w`` variables, so sharing across pairs is sound.
    """
    if not eliminate_w:
        return pair_constraints(system, eliminate_w=False, prune=prune), False
    key = (rule_system_fingerprint(system), bool(prune))
    cached = _DUAL_CACHE.get(key)
    if cached is not None:
        if METRICS.enabled:
            METRICS.counter("dualize.cache.hit").inc()
        return cached, True
    if METRICS.enabled:
        METRICS.counter("dualize.cache.miss").inc()
    with span(
        "dualize.pair",
        head=system.head_node,
        subgoal=system.subgoal_node,
    ) as node:
        result = pair_constraints(system, eliminate_w=True, prune=prune)
        node.inc("rows_out", len(result))
    if len(_DUAL_CACHE) >= _DUAL_CACHE_LIMIT:
        _DUAL_CACHE.pop(next(iter(_DUAL_CACHE)))
    _DUAL_CACHE[key] = result
    return result, False


def _inference_key(settings):
    return (
        settings.widen_after,
        settings.max_iterations,
        settings.narrowing_passes,
        settings.max_rows,
        settings.join_strategy,
    )


def resolve_settings(settings):
    """Validate analyzer settings eagerly; return ``(norm, backend)``.

    Unknown ``norm`` or ``feasibility`` values raise one clear
    :class:`AnalysisError` at construction time instead of failing
    mid-SCC with subsystem-specific error shapes.
    """
    try:
        norm = get_norm(settings.norm)
    except ValueError as error:
        raise AnalysisError("invalid analyzer settings: %s" % error) from None
    fm_kernel = getattr(settings, "fm_kernel", "int")
    if fm_kernel not in KERNELS:
        raise AnalysisError(
            "invalid analyzer settings: unknown fm_kernel %r "
            "(choose one of %s)"
            % (fm_kernel, ", ".join(repr(k) for k in KERNELS))
        )
    backend = get_backend(
        settings.feasibility, prune=settings.prune_fm, kernel=fm_kernel
    )
    method = getattr(settings, "method", "argsize")
    # Lazy import: repro.methods imports repro.core, not vice versa.
    from repro.methods import available_methods

    if method not in available_methods():
        raise AnalysisError(
            "unknown termination method %r; choose from %s"
            % (method, ", ".join(available_methods()))
        )
    return norm, backend


# -- the pipeline -------------------------------------------------------------


@dataclass
class _SCCState:
    """Mutable scratch the SCC stages hand to one another."""

    members: tuple
    bound_positions: dict = None
    systems: list = None
    combined: ConstraintSystem = None
    lambda_system: ConstraintSystem = None
    edges: list = None
    thetas: dict = None
    paths: ConstraintSystem = None
    final: ConstraintSystem = None
    outcome: object = None


@dataclass
class _PreparedSCC:
    """One SCC run through its pre-solve stages (batched dispatch).

    ``result`` is set when the SCC finished early — a certificate
    cache hit or a pre-solve verdict — otherwise ``state.final``
    holds the assembled lambda system awaiting the batched solve.
    """

    state: _SCCState
    result: object = None
    fingerprint: str = ""
    order: object = None
    cache_state: str = ""
    assembly_time: float = 0.0


class AnalysisPipeline:
    """Staged execution engine bound to one program + settings.

    :class:`~repro.core.analyzer.TerminationAnalyzer` composes this;
    callers wanting per-stage control or traces can drive it directly.
    """

    PROGRAM_STAGES = ("adorn", "interarg")
    SCC_STAGES = ("rule_systems", "dualize", "theta", "solve", "certify")

    def __init__(self, program, settings, certificate_cache=None):
        if not isinstance(program, Program):
            raise AnalysisError("expected a Program")
        self.program = program
        self.settings = settings
        self.norm, self.backend = resolve_settings(settings)
        self.fm_kernel = getattr(settings, "fm_kernel", "int")
        self.certificate_cache = certificate_cache
        self._environment = None
        self._environment_key = None

    def _certificate_settings_key(self):
        """Every knob the SCC stages read, as a hashable tuple — part
        of the certificate fingerprint so a cache shared across
        configurations can never alias their certificates."""
        s = self.settings
        return (
            self.norm.name,
            bool(s.allow_negative_theta),
            bool(s.eliminate_w),
            bool(s.prune_fm),
            self.backend.name,
            getattr(s, "method", "argsize"),
        )

    # -- inter-argument constraints ------------------------------------------

    @property
    def environment(self):
        """Inter-argument constraints, inferred (or recalled) on first use."""
        env, _ = self._obtain_environment()
        return env

    def use_external_constraints(self, environment):
        """Install externally supplied inter-argument constraints
        (the paper's "supplied by other external means")."""
        self._environment = environment

    def _obtain_environment(self):
        """Return ``(environment, cache_hit)``, consulting the
        analyzer-local slot first and the process-wide cache second."""
        if self._environment is not None:
            return self._environment, True
        if not self.settings.use_interarg:
            self._environment = SizeEnvironment()
            return self._environment, False
        if self._environment_key is None:
            self._environment_key = (
                program_fingerprint(self.program),
                self.norm.name,
                _inference_key(self.settings.inference),
            )
        cached = _ENV_CACHE.get(self._environment_key)
        if cached is not None:
            if METRICS.enabled:
                METRICS.counter("env.cache.hit").inc()
            self._environment = cached
            return cached, True
        if METRICS.enabled:
            METRICS.counter("env.cache.miss").inc()
        with span("interarg.infer", norm=self.norm.name):
            environment = infer_interargument_constraints(
                self.program,
                norm=self.norm,
                settings=self.settings.inference,
                cache=self.certificate_cache,
            )
        if len(_ENV_CACHE) >= _ENV_CACHE_LIMIT:
            _ENV_CACHE.pop(next(iter(_ENV_CACHE)))
        _ENV_CACHE[self._environment_key] = environment
        self._environment = environment
        return environment, False

    # -- program-level stages -------------------------------------------------

    def run(self, root_indicator, root_mode, request_id=None):
        """Full analysis of the *root_mode* query on the root.

        *request_id*, when given (the serve layer always passes one),
        is stamped onto the root ``analyze`` span — the join key
        between a trace, the daemon's access-log line, and the
        ``X-Repro-Request-Id`` a client saw.
        """
        root_indicator = tuple(root_indicator)
        trace = AnalysisTrace()
        attrs = dict(
            root="%s/%d" % root_indicator,
            mode=str(root_mode),
            norm=self.norm.name,
            backend=self.backend.name,
            kernel=self.fm_kernel,
        )
        if request_id is not None:
            attrs["request_id"] = str(request_id)
        with trace.span("analyze", **attrs), use_kernel(self.fm_kernel):
            return self._run_traced(root_indicator, root_mode, trace)

    def _run_traced(self, root_indicator, root_mode, trace):
        with trace.timed("adorn") as event:
            graph, nodes = adorned_call_graph(
                self.program, root_indicator, root_mode
            )
            components = list(strongly_connected_components(graph))
            event.rows_out = len(nodes)

        with trace.timed("interarg") as event:
            environment, hit = self._obtain_environment()
            if hit:
                event.cache_hits = 1
            else:
                event.cache_misses = 1
            event.rows_out = sum(
                len(poly.system) for _, poly in environment.items()
            )

        defined = self.program.defined_indicators()
        worklist = []
        for component in components:
            members = tuple(
                node for node in component if node.indicator in defined
            )
            if not members:
                continue  # EDB leaves: finite relations, nothing to prove
            worklist.append(
                (members, is_recursive_component(graph, component))
            )
        batched = (
            isinstance(self.backend, BatchLPBackend)
            and sum(1 for _, recursive in worklist if recursive) >= 2
        )
        scc_results = []
        pending = []  # (result slot index, _PreparedSCC) awaiting solve
        overall = PROVED
        for members, recursive in worklist:
            if not recursive:
                with trace.timed("certify"):
                    scc_results.append(
                        SCCResult(
                            members=members,
                            status=PROVED,
                            proof=SCCProof(
                                members=members,
                                norm=self.norm.name,
                                lambdas={},
                                thetas={},
                                trivially_nonrecursive=True,
                            ),
                        )
                    )
                continue
            if batched:
                prepared = self._prepare_scc(members, trace)
                if prepared.result is None:
                    pending.append((len(scc_results), prepared))
                scc_results.append(prepared.result)
                continue
            scc_results.append(self.analyze_scc(members, trace=trace))
        if pending:
            self._solve_scc_batch(pending, scc_results, trace)
        for result in scc_results:
            if not result.proved:
                overall = UNKNOWN
        return AnalysisResult(
            program=self.program,
            root=root_indicator,
            root_mode=str(root_mode),
            status=overall,
            scc_results=scc_results,
            nodes=tuple(nodes),
            environment=environment,
            norm=self.norm.name,
            trace=trace,
        )

    # -- SCC-level stages -----------------------------------------------------

    def analyze_scc(self, members, trace=None):
        """Run the SCC stages (Sections 3–6) for one recursive SCC.

        With a certificate cache installed, a ``fingerprint`` stage
        runs first: it computes the SCC's content address and tries to
        reuse a cached certificate — re-validated through
        :mod:`repro.core.verifier` when it claims PROVED.  A failed
        validation counts as ``scc.cache.rejected`` and falls through
        to a fresh solve; a fresh outcome is published back.
        """
        if trace is None:
            trace = AnalysisTrace()
        state = _SCCState(members=tuple(members))
        with trace.span(
            "scc", members=", ".join(str(m) for m in state.members)
        ) as scc_span, use_kernel(self.fm_kernel):
            fingerprint = ""
            order = None
            cache_state = ""
            if self.certificate_cache is not None:
                with trace.timed("fingerprint") as event:
                    reused, fingerprint, order = self._reuse_certificate(
                        state.members, event
                    )
                if reused is not None:
                    scc_span.set(cache="hit")
                    return reused
                cache_state = (
                    "rejected" if event.cache_misses and event.cache_hits
                    else "miss"
                )
                scc_span.set(cache=cache_state)
            for name in self.SCC_STAGES:
                stage = getattr(self, "_stage_%s" % name)
                with trace.timed(name) as event:
                    result = stage(state, event)
                if result is not None:
                    return self._publish_certificate(
                        result, fingerprint, order, cache_state
                    )
        raise AnalysisError("certify stage returned no result")  # unreachable

    def _prepare_scc(self, members, trace):
        """Run one SCC's pre-solve stages (batched dispatch mode).

        Mirrors :meth:`analyze_scc` up to the point the final lambda
        system exists, then defers the feasibility solve: the caller
        collects every prepared SCC and dispatches them through one
        :meth:`~repro.solve.LPBackend.feasible_points` call.  Early
        finishes (certificate reuse, a pre-solve verdict) come back
        with ``.result`` already set.
        """
        state = _SCCState(members=tuple(members))
        prepared = _PreparedSCC(state=state)
        with trace.span(
            "scc", members=", ".join(str(m) for m in state.members)
        ) as scc_span, use_kernel(self.fm_kernel):
            if self.certificate_cache is not None:
                with trace.timed("fingerprint") as event:
                    reused, prepared.fingerprint, prepared.order = (
                        self._reuse_certificate(state.members, event)
                    )
                if reused is not None:
                    scc_span.set(cache="hit")
                    prepared.result = reused
                    return prepared
                prepared.cache_state = (
                    "rejected" if event.cache_misses and event.cache_hits
                    else "miss"
                )
                scc_span.set(cache=prepared.cache_state)
            for name in self.SCC_STAGES[:-2]:
                stage = getattr(self, "_stage_%s" % name)
                with trace.timed(name) as event:
                    result = stage(state, event)
                if result is not None:
                    prepared.result = self._publish_certificate(
                        result, prepared.fingerprint, prepared.order,
                        prepared.cache_state,
                    )
                    return prepared
            started = perf_counter()
            self._assemble_final(state)
            prepared.assembly_time = perf_counter() - started
        return prepared

    def _solve_scc_batch(self, pending, scc_results, trace):
        """Dispatch the deferred solves as one batched backend call.

        Fills each pending ``(slot, prepared)`` entry of *scc_results*
        in place.  Stage accounting matches the serial path: one
        ``solve`` record per SCC (an even share of the batch wall time
        plus that SCC's assembly time), then the ordinary ``certify``
        stage; outcomes are byte-identical to serial solves by the
        :class:`~repro.solve.BatchLPBackend` contract.
        """
        with use_kernel(self.fm_kernel):
            finals = [prepared.state.final for _, prepared in pending]
            with trace.span("solve.batch", sccs=len(finals)):
                started = perf_counter()
                outcomes = self.backend.feasible_points(finals)
                share = (perf_counter() - started) / len(finals)
            for (slot, prepared), outcome in zip(pending, outcomes):
                state = prepared.state
                state.outcome = outcome
                event = StageTrace(
                    stage="solve", calls=1,
                    wall_time=share + prepared.assembly_time,
                )
                result = self._solve_verdict(state, event)
                trace.add(event)
                if result is None:
                    with trace.timed("certify") as cevent:
                        result = self._stage_certify(state, cevent)
                scc_results[slot] = self._publish_certificate(
                    result, prepared.fingerprint, prepared.order,
                    prepared.cache_state,
                )

    def _reuse_certificate(self, members, event):
        """Try the certificate cache for one SCC.

        Returns ``(result_or_None, fingerprint, canonical_order)``,
        recording hit/miss/rejected on the stage *event* and the
        ``scc.cache.*`` metrics.  A cached PROVED claim is accepted
        only after :func:`~repro.core.verifier.verify_proof` re-checks
        it against rule systems built freshly from the *current*
        program, so a stale or colliding cache entry can cost time,
        never soundness.
        """
        from repro.core.fingerprint import scc_certificate_fingerprint
        from repro.core.certcache import decode_scc_certificate
        from repro.core.verifier import VerificationError, verify_proof

        environment, _ = self._obtain_environment()
        fingerprint, order = scc_certificate_fingerprint(
            self.program, members, environment,
            self._certificate_settings_key(),
        )
        payload = self.certificate_cache.get(fingerprint)
        decoded = (
            decode_scc_certificate(payload, order)
            if payload is not None else None
        )
        if decoded is None:
            event.cache_misses += 1
            if METRICS.enabled:
                METRICS.counter("scc.cache.miss").inc()
            return None, fingerprint, order
        if decoded["status"] != PROVED:
            event.cache_hits += 1
            if METRICS.enabled:
                METRICS.counter("scc.cache.hit").inc()
            return SCCResult(
                members=members,
                status=decoded["status"],
                reason=decoded["reason"],
                constraint_rows=decoded["rows"],
                cache="hit",
                fingerprint=fingerprint,
            ), fingerprint, order
        systems = []
        for node in members:
            for clause in self.program.clauses_for(node.indicator):
                systems.extend(
                    build_rule_systems(
                        clause, node, members, environment, self.norm
                    )
                )
        proof = SCCProof(
            members=members,
            norm=self.norm.name,
            lambdas=decoded["lambdas"] or {},
            thetas=decoded["thetas"] or {},
            rule_systems=systems,
        )
        try:
            verify_proof(proof)
        except VerificationError:
            # The soundness guard: never trust an unverifiable reused
            # certificate — count the rejection and re-prove fresh.
            event.cache_hits += 1
            event.cache_misses += 1
            if METRICS.enabled:
                METRICS.counter("scc.cache.rejected").inc()
            return None, fingerprint, order
        event.cache_hits += 1
        if METRICS.enabled:
            METRICS.counter("scc.cache.hit").inc()
        return SCCResult(
            members=members,
            status=PROVED,
            proof=proof,
            constraint_rows=decoded["rows"],
            cache="hit",
            fingerprint=fingerprint,
        ), fingerprint, order

    def _publish_certificate(self, result, fingerprint, order, cache_state):
        """Record a freshly-solved SCC outcome in the cache (when one
        is installed) and stamp the result's cache provenance."""
        if self.certificate_cache is None or not fingerprint:
            return result
        from repro.core.certcache import encode_scc_certificate

        result.cache = cache_state or "miss"
        result.fingerprint = fingerprint
        self.certificate_cache.put(
            fingerprint, encode_scc_certificate(result, order), kind="cert"
        )
        if METRICS.enabled:
            METRICS.counter("scc.cache.puts").inc()
        return result

    def _stage_rule_systems(self, state, event):
        """Assemble the Eq. 1 systems for every rule × recursive subgoal."""
        members = state.members
        state.bound_positions = {
            node: node.bound_positions() for node in members
        }
        if any(not positions for positions in state.bound_positions.values()):
            free_nodes = [
                str(node) for node in members
                if not state.bound_positions[node]
            ]
            return SCCResult(
                members=members,
                status=UNKNOWN,
                reason="no bound arguments on %s; no measure can decrease"
                % ", ".join(free_nodes),
            )
        environment, _ = self._obtain_environment()
        state.systems = []
        for node in members:
            for clause in self.program.clauses_for(node.indicator):
                state.systems.extend(
                    build_rule_systems(
                        clause, node, members, environment, self.norm
                    )
                )
        if not state.systems:
            return SCCResult(
                members=members,
                status=UNKNOWN,
                reason="no rule/recursive-subgoal combinations found",
            )
        event.rows_out = sum(len(s.imported) for s in state.systems)
        return None

    def _stage_dualize(self, state, event):
        """LP-dualize each pair into lambda/theta constraints (memoized)."""
        state.combined = ConstraintSystem()
        for system in state.systems:
            rows, hit = cached_pair_constraints(
                system,
                eliminate_w=self.settings.eliminate_w,
                prune=self.settings.prune_fm,
            )
            state.combined.extend(rows)
            if hit:
                event.cache_hits += 1
            else:
                event.cache_misses += 1
        state.lambda_system = lambda_nonnegativity(
            (node, state.bound_positions[node]) for node in state.members
        )
        state.edges = [system.edge for system in state.systems]
        event.rows_out = len(state.combined) + len(state.lambda_system)
        return None

    def _stage_theta(self, state, event):
        """Choose theta offsets (Section 6.1) or, in Appendix C mode,
        build the positive-cycle path constraints."""
        event.rows_in = len(state.combined)
        if self.settings.allow_negative_theta:
            state.paths = path_constraints(state.members, state.edges)
            event.rows_out = len(state.paths)
            return None
        state.thetas = choose_thetas(
            state.edges, state.combined, state.lambda_system
        )
        cycle = zero_weight_cycle(state.members, state.thetas)
        if cycle is not None:
            return SCCResult(
                members=state.members,
                status=UNKNOWN,
                reason="zero-weight cycle %s — strong evidence of "
                "nontermination (Section 6.1)"
                % " -> ".join(str(node) for node in cycle),
                constraint_rows=len(state.combined),
            )
        return None

    def _assemble_final(self, state):
        """Build (and remember) the final lambda feasibility system."""
        if self.settings.allow_negative_theta:
            final = ConstraintSystem(state.combined)
            final.extend(state.lambda_system)
            final.extend(state.paths)
        else:
            final = substitute_thetas(state.combined, state.thetas)
            final.extend(state.lambda_system)
        state.final = final
        return final

    def _solve_verdict(self, state, event):
        """Fold ``state.outcome`` into the solve *event*; an UNKNOWN
        :class:`SCCResult` on infeasibility, None to continue."""
        stats = state.outcome.stats
        event.rows_in = len(state.final)
        event.rows_out = stats.rows_out
        event.pivots = stats.pivots
        event.eliminations = stats.eliminations
        if not state.outcome.feasible:
            if self.settings.allow_negative_theta:
                reason = ("infeasible even with negative theta weights "
                          "(Appendix C)")
            else:
                reason = "lambda constraint system infeasible"
            return SCCResult(
                members=state.members,
                status=UNKNOWN,
                reason=reason,
                constraint_rows=len(state.final),
            )
        return None

    def _stage_solve(self, state, event):
        """Final lambda feasibility through the configured backend."""
        final = self._assemble_final(state)
        state.outcome = self.backend.feasible_point(final)
        return self._solve_verdict(state, event)

    def _stage_certify(self, state, event):
        """Extract the lambda (and, in Appendix C mode, theta) witness."""
        point = state.outcome.witness
        thetas = state.thetas
        if thetas is None:  # Appendix C: thetas come from the LP point
            thetas = {
                edge: point.get(theta_var(*edge), Fraction(0))
                for edge in set(state.edges)
            }
        lambdas = _extract_lambdas(point, state.members, state.bound_positions)
        proof = SCCProof(
            members=state.members,
            norm=self.norm.name,
            lambdas=lambdas,
            thetas=thetas,
            rule_systems=state.systems,
        )
        return SCCResult(
            members=state.members,
            status=PROVED,
            proof=proof,
            constraint_rows=len(state.final),
        )


def _extract_lambdas(point, members, bound_positions):
    lambdas = {}
    for node in members:
        weights = {}
        for position in bound_positions[node]:
            weights[position] = point.get(lam_var(node, position), Fraction(0))
        lambdas[node] = weights
    return lambdas
