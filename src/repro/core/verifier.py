"""Independent certificate verification via the primal LP (Eq. 4).

The analyzer finds lambda by Fourier–Motzkin reduction of the *dual*.
This module re-checks a finished certificate through the opposite
route, exactly as Section 4 sets the problem up: for every rule ×
recursive-subgoal combination, solve the primal

    minimize  lambda_i . x - lambda_j . y
    subject to  Eq. 1  (sizes nonnegative, imported constraints)

with the exact simplex and confirm the minimum is >= theta_ij (or that
the body constraints are infeasible, in which case the recursive call
is unreachable and the claim is vacuous).  It also re-checks the
positive-cycle condition on the chosen thetas with the min-plus
closure.

A certificate that passes both checks is correct by the paper's
argument regardless of any bug in the FM/dual path — the two pipelines
share only the Eq. 1 construction.
"""

from __future__ import annotations

from fractions import Fraction

from repro.errors import ReproError
from repro.linalg.constraints import Constraint, ConstraintSystem
from repro.linalg.linexpr import LinearExpr
from repro.linalg.simplex import INFEASIBLE, UNBOUNDED, solve_lp
from repro.graph.minplus import find_nonpositive_cycle


class VerificationError(ReproError):
    """Raised when a certificate fails independent verification."""


def verify_proof(proof):
    """Verify a :class:`~repro.core.certificate.TerminationProof` or a
    single :class:`~repro.core.certificate.SCCProof`.

    Returns True on success; raises :class:`VerificationError` with a
    precise reason otherwise.
    """
    scc_proofs = getattr(proof, "scc_proofs", None)
    if scc_proofs is None:
        scc_proofs = [proof]
    for scc_proof in scc_proofs:
        _verify_scc(scc_proof)
    return True


def _verify_scc(proof):
    if proof.trivially_nonrecursive:
        return

    _check_lambda_nonnegative(proof)
    _check_positive_cycles(proof)
    for system in proof.rule_systems:
        _check_decrease(proof, system)


def _check_lambda_nonnegative(proof):
    for node, weights in proof.lambdas.items():
        for position, value in weights.items():
            if value < 0:
                raise VerificationError(
                    "lambda[%s][%d] = %s is negative" % (node, position, value)
                )


def _check_positive_cycles(proof):
    weights = dict(proof.thetas)
    cycle = find_nonpositive_cycle(list(proof.members), weights)
    if cycle is not None:
        raise VerificationError(
            "theta weights admit a non-positive cycle: %s"
            % " -> ".join(str(node) for node in cycle)
        )


def _check_decrease(proof, system):
    """Primal check of Eq. 2 for one rule/recursive-subgoal pair."""
    theta = proof.thetas.get(system.edge)
    if theta is None:
        raise VerificationError(
            "certificate has no theta for edge %s" % (system.edge,)
        )

    head_weights = proof.lambdas.get(system.head_node, {})
    subgoal_weights = proof.lambdas.get(system.subgoal_node, {})

    objective = LinearExpr()
    for position, expr in zip(system.x_positions, system.x_exprs):
        weight = head_weights.get(position, Fraction(0))
        if weight:
            objective = objective + expr * weight
    for position, expr in zip(system.y_positions, system.y_exprs):
        weight = subgoal_weights.get(position, Fraction(0))
        if weight:
            objective = objective - expr * weight

    constraints = ConstraintSystem()
    constraints.extend(system.imported)
    phi = set()
    for expr in system.x_exprs:
        phi |= expr.variables()
    for expr in system.y_exprs:
        phi |= expr.variables()
    for constraint in system.imported:
        phi |= constraint.variables()
    for var in sorted(phi, key=repr):
        constraints.add(Constraint.ge(LinearExpr.of(var)))

    result = solve_lp(objective, constraints)
    if result.status == INFEASIBLE:
        return  # recursive call unreachable under the size constraints
    if result.status == UNBOUNDED:
        raise VerificationError(
            "decrease objective unbounded below for rule %s" % system.clause
        )
    if result.value < theta:
        raise VerificationError(
            "decrease fails for rule %s: min(lambda.x - lambda.y) = %s "
            "< theta = %s" % (system.clause, result.value, theta)
        )
