"""Bound/free adornment inference.

The paper assumes preprocessing has arranged that "every predicate has
the same bound-free adornment" (Section 3).  Given the query mode of a
root predicate (e.g. ``perm(b, f)``), this module propagates
boundedness left-to-right through rule bodies and assigns one adornment
to every reachable predicate.

Boundedness here under-approximates *groundness at call time*:

- a head argument marked ``b`` is ground when the procedure is invoked;
- solving a positive user subgoal grounds all its arguments (the
  standard assumption for range-restricted programs over ground EDB —
  answers are ground);
- ``X = T`` grounds the variables of one side once the other side is
  ground; ``V is E`` grounds ``V``; comparisons ground nothing;
- negative subgoals ground nothing (Appendix D).

When a predicate is reached with several call modes, the adornment is
their meet: an argument stays ``b`` only if bound in *every* call.
This is the safe direction — termination must be shown for every call
pattern that actually occurs.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ModeError
from repro.lp.program import BUILTIN_PREDICATES, Program
from repro.lp.terms import term_variables


@dataclass(frozen=True)
class Adornment:
    """A bound/free pattern like ``bf`` for a binary predicate."""

    pattern: tuple

    @classmethod
    def parse(cls, text):
        """Parse an adornment string like 'bbf'."""
        pattern = tuple(text)
        if any(ch not in ("b", "f") for ch in pattern):
            raise ModeError("adornment must use only 'b'/'f': %r" % text)
        return cls(pattern)

    @property
    def arity(self):
        """The number of arguments."""
        return len(self.pattern)

    def bound_positions(self):
        """1-based positions of bound arguments."""
        return tuple(
            i for i, ch in enumerate(self.pattern, start=1) if ch == "b"
        )

    def is_bound(self, position):
        """True when the 1-based position is bound."""
        return self.pattern[position - 1] == "b"

    def meet(self, other):
        """Positionwise meet: bound only if bound in both."""
        if self.arity != other.arity:
            raise ModeError("adornment arity mismatch")
        return Adornment(
            tuple(
                "b" if (a == "b" and b == "b") else "f"
                for a, b in zip(self.pattern, other.pattern)
            )
        )

    def __str__(self):
        return "".join(self.pattern)


class AdornedPredicate:
    """A predicate specialized to one bound/free call pattern.

    The paper assumes preprocessing gives every predicate a single
    adornment; when a program calls the same predicate under several
    modes (``perm`` calls ``append`` as ``ffb`` and again as ``bbf``),
    the standard specialization treats each (predicate, adornment) pair
    as its own analysis node — that is this class.  Analysis nodes,
    dependency edges, SCCs, and lambda vectors are all per adorned
    predicate.
    """

    __slots__ = ("indicator", "adornment")

    def __init__(self, indicator, adornment):
        if isinstance(adornment, str):
            adornment = Adornment.parse(adornment)
        object.__setattr__(self, "indicator", tuple(indicator))
        object.__setattr__(self, "adornment", adornment)

    def __setattr__(self, key, value):
        raise AttributeError("AdornedPredicate is immutable")

    @property
    def name(self):
        """The predicate name."""
        return self.indicator[0]

    @property
    def arity(self):
        """The number of arguments."""
        return self.indicator[1]

    def bound_positions(self):
        """1-based positions of bound arguments."""
        return self.adornment.bound_positions()

    def __eq__(self, other):
        return (
            isinstance(other, AdornedPredicate)
            and self.indicator == other.indicator
            and self.adornment == other.adornment
        )

    def __hash__(self):
        return hash((self.indicator, self.adornment))

    def __str__(self):
        return "%s/%d^%s" % (self.name, self.arity, self.adornment)

    def __repr__(self):
        return "AdornedPredicate(%r, %r)" % (
            self.indicator,
            str(self.adornment),
        )


def clause_call_adornments(clause, head_adornment):
    """Per-body-literal call adornments under *head_adornment*.

    Returns a list parallel to ``clause.body``; builtins get an
    adornment too (callers typically skip them).
    """
    running = set(_head_bound_vars(clause, head_adornment))
    result = []
    for literal in clause.body:
        pattern = tuple(
            "b" if _vars_all_bound(arg, running) else "f"
            for arg in literal.args
        )
        result.append(Adornment(pattern))
        _update_bound(literal, running)
    return result


def adorned_call_graph(program, root_indicator, root_mode):
    """The adorned dependency graph reachable from the root call.

    Returns ``(graph, nodes)`` where *graph* is a
    :class:`~repro.graph.digraph.Digraph` over
    :class:`AdornedPredicate` nodes (builtins and undefined EDB
    predicates excluded from edges but EDB nodes retained as leaves),
    and *nodes* is the set of adorned predicates reached.
    """
    from repro.graph.digraph import Digraph
    from repro.lp.program import BUILTIN_PREDICATES

    if isinstance(root_mode, str):
        root_mode = Adornment.parse(root_mode)
    root = AdornedPredicate(root_indicator, root_mode)
    if root_mode.arity != root_indicator[1]:
        raise ModeError(
            "mode %s does not fit %s/%d" % (root_mode, *root_indicator)
        )

    graph = Digraph()
    graph.add_node(root)
    worklist = [root]
    seen = {root}
    while worklist:
        node = worklist.pop()
        for clause in program.clauses_for(node.indicator):
            adornments = clause_call_adornments(clause, node.adornment)
            for literal, adornment in zip(clause.body, adornments):
                if literal.indicator in BUILTIN_PREDICATES:
                    continue
                callee = AdornedPredicate(literal.indicator, adornment)
                graph.add_edge(node, callee)
                if callee not in seen:
                    seen.add(callee)
                    worklist.append(callee)
    return graph, seen


def infer_adornments(program, root_indicator, root_mode):
    """Adornments for every predicate reachable from the root call.

    Parameters
    ----------
    program:
        The :class:`~repro.lp.program.Program` to analyze.
    root_indicator:
        ``(name, arity)`` of the queried predicate.
    root_mode:
        Adornment string or :class:`Adornment` for the root call.

    Returns a dict ``{indicator: Adornment}``.  Predicates never
    reached are absent.
    """
    if isinstance(root_mode, str):
        root_mode = Adornment.parse(root_mode)
    name, arity = root_indicator
    if root_mode.arity != arity:
        raise ModeError(
            "mode %s has arity %d; predicate %s/%d expects %d"
            % (root_mode, root_mode.arity, name, arity, arity)
        )

    adornments = {root_indicator: root_mode}
    worklist = [root_indicator]
    while worklist:
        indicator = worklist.pop()
        adornment = adornments[indicator]
        for clause in program.clauses_for(indicator):
            for called, call_mode in _clause_calls(clause, adornment):
                if called in BUILTIN_PREDICATES:
                    continue
                existing = adornments.get(called)
                merged = (
                    call_mode if existing is None else existing.meet(call_mode)
                )
                if merged != existing:
                    adornments[called] = merged
                    if called not in worklist:
                        worklist.append(called)
    return adornments


def _clause_calls(clause, head_adornment):
    """Yield (indicator, Adornment) for each body call of *clause*."""
    running = set(_head_bound_vars(clause, head_adornment))
    for literal in clause.body:
        call_pattern = tuple(
            "b" if _vars_all_bound(arg, running) else "f"
            for arg in literal.args
        )
        indicator = literal.indicator
        if indicator not in BUILTIN_PREDICATES:
            yield indicator, Adornment(call_pattern)
        _update_bound(literal, running)


def bound_variables_before(clause, head_adornment, position):
    """The set of variables ground before body literal *position*
    (0-based) is attempted."""
    running = set(_head_bound_vars(clause, head_adornment))
    for literal in clause.body[:position]:
        _update_bound(literal, running)
    return running


def _head_bound_vars(clause, adornment):
    variables = set()
    for position, arg in enumerate(clause.head_args, start=1):
        if adornment.is_bound(position):
            variables.update(term_variables(arg))
    return variables


def _vars_all_bound(term, bound):
    return all(var in bound for var in term_variables(term))


def _update_bound(literal, bound):
    """Grow the bound-variable set after *literal* succeeds."""
    if not literal.positive:
        return  # negation grounds nothing
    indicator = literal.indicator
    name, _ = indicator
    if indicator in BUILTIN_PREDICATES:
        if name == "=":
            left, right = literal.atom.args
            if _vars_all_bound(left, bound):
                bound.update(term_variables(right))
            elif _vars_all_bound(right, bound):
                bound.update(term_variables(left))
        elif name == "is":
            left, right = literal.atom.args
            if _vars_all_bound(right, bound):
                bound.update(term_variables(left))
        return
    # A positive user subgoal grounds all of its arguments on success.
    for arg in literal.args:
        bound.update(term_variables(arg))
