"""Theta selection for mutual recursion (Section 6.1, Appendix C).

For a single-predicate SCC there is one theta, ``theta_ii = 1``: the
weighted bound-argument size must drop by at least one on every
self-recursive call.

With mutual recursion the analyzer must pick ``theta_ij in {0, 1}`` per
dependency edge so that, viewed as edge weights, *every cycle of the
dependency graph has positive weight*.  The paper's procedure:

1. set ``theta_ij = 0`` (i != j) where the dual constraints force it —
   we test this semantically: if the edge's pair systems together with
   lambda >= 0 cannot tolerate ``theta_ij = 1``, it is forced to 0;
2. set every other theta to 1;
3. run the min-plus closure (Floyd's algorithm) and reject zero-weight
   cycles ("strong evidence of nontermination").

Appendix C drops the nonnegativity restriction on theta: thetas become
rational unknowns, and positivity of every cycle is enforced through
Papadimitriou's shortest-path variables ``sigma_ij`` with

    sigma_ij <= theta_ij            (base case)
    sigma_ij <= theta_ik + sigma_kj (path step, k != i, j)
    sigma_ii >= 1                   (positive cycles)

after which the sigma variables are eliminated by Fourier–Motzkin and
the surviving constraints joined with the lambda system.
"""

from __future__ import annotations

from fractions import Fraction

from repro.linalg.constraints import Constraint, ConstraintSystem
from repro.linalg.fourier_motzkin import eliminate_all
from repro.linalg.linexpr import LinearExpr
from repro.linalg.simplex import is_feasible
from repro.graph.minplus import find_nonpositive_cycle
from repro.core.dual import theta_var


def choose_thetas(edges, combined_system, lambda_system):
    """Assign 0/1 weights to SCC dependency *edges*.

    *edges* are ``(i, j)`` indicator pairs that actually occur as
    (rule head, recursive subgoal) combinations.  *combined_system* is
    the union of all pairs' lambda/theta constraints;
    *lambda_system* carries the lambda >= 0 rows.

    Returns ``{edge: Fraction}``.  Self-loops are always 1.
    """
    thetas = {}
    for edge in sorted(set(edges), key=repr):
        i, j = edge
        if i == j:
            thetas[edge] = Fraction(1)
            continue
        if _tolerates_one(edge, combined_system, lambda_system):
            thetas[edge] = Fraction(1)
        else:
            thetas[edge] = Fraction(0)
    return thetas


def _tolerates_one(edge, combined_system, lambda_system):
    """Can this edge's theta be 1 without contradicting the duals?"""
    probe = ConstraintSystem(combined_system)
    probe.extend(lambda_system)
    probe.add(Constraint.eq(LinearExpr.of(theta_var(*edge)), 1))
    return is_feasible(probe)


def zero_weight_cycle(members, thetas):
    """A witness cycle of zero total weight, or None.

    *members* are the SCC's predicate indicators; *thetas* maps edges
    to their chosen weights (all nonnegative here, so a non-positive
    cycle is exactly a zero-weight one).
    """
    weights = {edge: weight for edge, weight in thetas.items()}
    return find_nonpositive_cycle(list(members), weights)


def substitute_thetas(system, thetas):
    """Replace theta variables by their chosen values."""
    mapping = {
        theta_var(*edge): LinearExpr.constant(value)
        for edge, value in thetas.items()
    }
    return system.substitute(mapping)


# -- Appendix C: negative weights --------------------------------------------


def sigma_var(i, j):
    """The shortest-path variable for the (i, j) node pair."""
    return (
        "sigma",
        i.name, i.arity, str(i.adornment),
        j.name, j.arity, str(j.adornment),
    )


def path_constraints(members, edges):
    """Papadimitriou path constraints over sigma/theta, sigma eliminated.

    Returns a :class:`ConstraintSystem` over the theta variables of
    *edges* that is satisfiable exactly when the thetas admit only
    positive-weight cycles.  (For SCCs of up to a handful of predicates
    the Fourier–Motzkin elimination is immediate; the paper notes the
    polynomial bound comes from LP theory, while "in practice, our
    program quietly runs Fourier–Motzkin elimination on the sigma_ij".)
    """
    members = sorted(set(members), key=repr)
    edges = sorted(set(edges), key=repr)
    system = ConstraintSystem()

    # Base cases: sigma_ij <= theta_ij for existing edges.
    for i, j in edges:
        system.add(
            Constraint.le(
                LinearExpr.of(sigma_var(i, j)),
                LinearExpr.of(theta_var(i, j)),
            )
        )

    # Path steps: sigma_ij <= theta_ik + sigma_kj for k != i, j with an
    # i -> k edge.
    for i, k in edges:
        for j in members:
            if k == j:
                continue
            system.add(
                Constraint.le(
                    LinearExpr.of(sigma_var(i, j)),
                    LinearExpr.of(theta_var(i, k))
                    + LinearExpr.of(sigma_var(k, j)),
                )
            )

    # Positive cycles: sigma_ii >= 1.
    for member in members:
        system.add(Constraint.ge(LinearExpr.of(sigma_var(member, member)), 1))

    sigma_names = [
        sigma_var(i, j) for i in members for j in members
    ]
    return eliminate_all(system, sigma_names)
