"""Termination certificates.

A proof for one SCC is the data a skeptic needs to re-check the
argument independently (see :mod:`repro.core.verifier`):

- the norm used,
- the SCC's adorned predicates (each carries its bound/free pattern),
- the lambda vector per adorned predicate (nonnegative weights over its
  bound argument positions),
- the chosen theta per dependency edge,
- the rule systems (Eq. 1 data) the decrease claims range over.

The whole-program certificate aggregates SCC proofs bottom-up: by
induction over the SCC DAG, if every recursive SCC's weighted bound
size strictly decreases around every cycle (and lower SCCs terminate),
top-down evaluation of the root query terminates.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class SCCProof:
    """Certificate for a single strongly connected component."""

    members: tuple                 # AdornedPredicate nodes
    norm: str
    lambdas: dict                  # node -> {position: Fraction}
    thetas: dict                   # (node_i, node_j) edge -> Fraction
    rule_systems: list = field(default_factory=list)
    trivially_nonrecursive: bool = False

    def lambda_for(self, node):
        """The lambda weights of one member node."""
        return dict(self.lambdas.get(node, {}))

    def measure_description(self, node):
        """Human-readable weighted-size measure for a predicate."""
        weights = self.lambdas.get(node, {})
        terms = [
            "%s*|arg%d|" % (value, position)
            for position, value in sorted(weights.items())
            if value != 0
        ]
        return " + ".join(terms) if terms else "0"

    def describe(self):
        """Human-readable rendering."""
        if self.trivially_nonrecursive:
            return "SCC %s: non-recursive (terminates trivially)" % (
                _names(self.members),
            )
        lines = ["SCC %s: proved terminating" % (_names(self.members),)]
        for node in self.members:
            lines.append(
                "  measure[%s] = %s" % (node, self.measure_description(node))
            )
        for (i, j), value in sorted(self.thetas.items(), key=repr):
            lines.append("  theta[%s -> %s] = %s" % (i, j, value))
        return "\n".join(lines)


@dataclass
class TerminationProof:
    """Whole-program certificate: one :class:`SCCProof` per SCC."""

    root: tuple                    # queried indicator
    root_mode: str
    norm: str
    scc_proofs: list = field(default_factory=list)

    def proof_for(self, node):
        """The SCCProof containing *node*, or None."""
        for proof in self.scc_proofs:
            if node in proof.members:
                return proof
        return None

    def describe(self):
        """Human-readable rendering."""
        lines = [
            "Termination proof for %s/%d with mode %s (norm: %s)"
            % (self.root[0], self.root[1], self.root_mode, self.norm)
        ]
        for proof in self.scc_proofs:
            lines.append(proof.describe())
        return "\n".join(lines)


def _names(members):
    return "{%s}" % ", ".join(str(m) for m in members)
