"""Capture-rule planning (the paper's deductive-database motivation).

Section 1: "Capture rules were introduced by Ullman as a way to plan
the evaluation of queries in a 'knowledge base' ... top-down capture
rules require a proof of termination to justify use of top-down rule
evaluation.  An advantage of the capture rule approach is that the
system can attempt to choose an order for subgoals and rules that
assures termination; not only does this remove the burden from the
user, but different orders can be chosen for different bound-free
query patterns."

:func:`plan_capture_rules` does exactly that for one predicate: for
every bound/free pattern it first tries the program as written, then
searches body-subgoal reorderings of the predicate's own rules for one
the analyzer can prove, and reports the decision per mode.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field

from repro.lp.program import Clause, Program
from repro.core.analyzer import TerminationAnalyzer

TOP_DOWN = "top-down"
TOP_DOWN_REORDERED = "top-down (reordered)"
BOTTOM_UP = "bottom-up"
BOTTOM_UP_SAFE = "bottom-up (convergence guaranteed: Datalog)"


@dataclass
class CaptureDecision:
    """Outcome for one query mode."""

    mode: str
    strategy: str
    program: Program = None       # the (possibly reordered) program
    analysis: object = None

    @property
    def top_down_safe(self):
        """True unless the decision fell back to bottom-up."""
        return self.strategy != BOTTOM_UP


@dataclass
class CapturePlan:
    """Decisions for every mode of one predicate."""

    root: tuple
    decisions: dict = field(default_factory=dict)

    def decision(self, mode):
        """The CaptureDecision for *mode*."""
        return self.decisions[mode]

    def describe(self):
        """Human-readable rendering."""
        name, arity = self.root
        lines = ["capture rules for %s/%d:" % (name, arity)]
        for mode in sorted(self.decisions):
            lines.append(
                "  %s(%s): %s" % (name, mode, self.decisions[mode].strategy)
            )
        return "\n".join(lines)


def body_reorderings(program, indicator, limit=512):
    """Programs with permuted rule bodies for *indicator* (bounded)."""
    target_clauses = program.clauses_for(indicator)
    body_choices = [
        list(itertools.permutations(clause.body))
        for clause in target_clauses
    ]
    produced = 0
    for combination in itertools.product(*body_choices):
        if produced >= limit:
            return
        produced += 1
        candidate = Program()
        replacement = {
            id(clause): Clause(head=clause.head, body=tuple(body))
            for clause, body in zip(target_clauses, combination)
        }
        for clause in program.clauses:
            candidate.add_clause(replacement.get(id(clause), clause))
        yield candidate


def plan_capture_rules(
    program, root, modes=None, settings=None, reorder=True
):
    """Build a :class:`CapturePlan` for *root* over the given modes.

    *modes* defaults to every bound/free pattern of the predicate's
    arity.  With ``reorder=False`` only the program as written is
    considered (the planner then merely classifies modes).
    """
    name, arity = root
    if modes is None:
        modes = [
            "".join(bits) for bits in itertools.product("bf", repeat=arity)
        ]

    # One analyzer per candidate program: the inter-argument inference
    # (the expensive part, and independent of the query mode) is then
    # shared across every mode probed against that program.
    analyzers = {id(program): TerminationAnalyzer(program, settings=settings)}

    def analyze(candidate, mode):
        """Analyze *candidate* reusing its cached analyzer."""
        analyzer = analyzers.get(id(candidate))
        if analyzer is None:
            analyzer = TerminationAnalyzer(candidate, settings=settings)
            analyzers[id(candidate)] = analyzer
        return analyzer.analyze(tuple(root), mode)

    plan = CapturePlan(root=tuple(root))
    reordered_candidates = None
    for mode in modes:
        direct = analyze(program, mode)
        if direct.proved:
            plan.decisions[mode] = CaptureDecision(
                mode=mode, strategy=TOP_DOWN, program=program,
                analysis=direct,
            )
            continue
        found = None
        if reorder:
            if reordered_candidates is None:
                reordered_candidates = list(
                    body_reorderings(program, tuple(root))
                )
            for candidate in reordered_candidates:
                result = analyze(candidate, mode)
                if result.proved:
                    found = CaptureDecision(
                        mode=mode,
                        strategy=TOP_DOWN_REORDERED,
                        program=candidate,
                        analysis=result,
                    )
                    break
        if found is None:
            from repro.lp.bottomup import is_datalog

            strategy = BOTTOM_UP_SAFE if is_datalog(program) else BOTTOM_UP
            found = CaptureDecision(
                mode=mode, strategy=strategy, program=program,
                analysis=direct,
            )
        plan.decisions[mode] = found
    return plan
