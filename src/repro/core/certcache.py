"""Pluggable per-SCC certificate caches and their serialization.

A *certificate cache* is anything with ``get(key) -> str | None`` and
``put(key, payload, kind="")`` — the pipeline and the inter-argument
fixpoint consult it through exactly that duck-typed surface, so the
in-memory cache here and the sqlite-backed
:class:`repro.serve.store.StoreCertificateCache` are interchangeable.

Two payload kinds share the cache, distinguished by their key prefix
(see :mod:`repro.core.fingerprint`):

- ``env`` entries (``env1:...`` keys) hold the solved argument-size
  polyhedra of one dependency-graph SCC, keyed positionally by the
  fingerprint's canonical member order;
- ``cert`` entries (``scc1:...`` keys) hold one recursive adorned
  SCC's termination outcome: the lambda/theta witness for ``PROVED``
  (re-validated against freshly built rule systems before reuse — see
  :meth:`repro.core.pipeline.AnalysisPipeline.analyze_scc`), or the
  status + reason template for ``UNKNOWN``.

All payloads are JSON with exact fractions rendered as strings;
:func:`decode_scc_certificate` / :func:`decode_env_entries` return
``None`` on any malformed payload, which callers treat as a miss (a
corrupt cache can cost a re-solve, never a wrong answer).
"""

from __future__ import annotations

import json
from fractions import Fraction

from repro.linalg.constraints import Constraint
from repro.linalg.linexpr import LinearExpr
from repro.linalg.polyhedron import Polyhedron
from repro.sizes.size_equations import arg_dimension

__all__ = [
    "CERT_SCHEMA",
    "MemoryCertificateCache",
    "encode_env_entries",
    "decode_env_entries",
    "encode_scc_certificate",
    "decode_scc_certificate",
]

#: Schema identifier stamped into every serialized certificate.
CERT_SCHEMA = "repro.cert/1"


class MemoryCertificateCache:
    """Bounded in-process certificate cache (insertion-order FIFO).

    ``entries`` exposes the raw ``{key: (payload, kind)}`` mapping so
    batch workers can ship their locally-earned certificates back to
    the parent (see :func:`repro.batch.analyze_many`).
    """

    def __init__(self, limit=4096, entries=None):
        if limit < 1:
            raise ValueError("cache limit must be >= 1")
        self.limit = limit
        self.entries = {}
        if entries:
            for key, value in entries.items():
                payload, kind = value
                self.put(key, payload, kind)

    def get(self, key):
        """The stored payload for *key*, or None."""
        entry = self.entries.get(key)
        return entry[0] if entry is not None else None

    def put(self, key, payload, kind=""):
        """Store *payload* under *key*, evicting oldest past the bound."""
        if key not in self.entries and len(self.entries) >= self.limit:
            self.entries.pop(next(iter(self.entries)))
        self.entries[key] = (payload, kind)

    def __len__(self):
        return len(self.entries)


# -- exact-fraction helpers ----------------------------------------------------


def _fraction_text(value):
    value = Fraction(value)
    if value.denominator == 1:
        return str(value.numerator)
    return "%d/%d" % (value.numerator, value.denominator)


# -- environment payloads ------------------------------------------------------


def encode_env_entries(env, order):
    """Serialize the polyhedra of *order*'s indicators (the canonical
    member order of one ``env1:`` fingerprint) from *env*."""
    polyhedra = []
    for indicator in order:
        poly = env.get(indicator)
        polyhedra.append([
            [
                constraint.relation,
                [
                    [var[1], _fraction_text(coeff)]
                    for var, coeff in constraint.expr.items()
                ],
                _fraction_text(constraint.expr.const),
            ]
            for constraint in poly.system
        ])
    return json.dumps(
        {"schema": CERT_SCHEMA, "kind": "env", "polyhedra": polyhedra},
        sort_keys=True, separators=(",", ":"),
    )


def decode_env_entries(payload, order):
    """Rebuild ``{indicator: Polyhedron}`` for *order*'s indicators
    from a payload written by :func:`encode_env_entries`; None if the
    payload is malformed or does not match the member count."""
    try:
        data = json.loads(payload)
        if not isinstance(data, dict):
            return None
        if data.get("schema") != CERT_SCHEMA or data.get("kind") != "env":
            return None
        polyhedra = data["polyhedra"]
        if len(polyhedra) != len(order):
            return None
        decoded = {}
        for indicator, rows in zip(order, polyhedra):
            _, arity = indicator
            dims = tuple(arg_dimension(i) for i in range(1, arity + 1))
            constraints = [
                Constraint(
                    LinearExpr(
                        {
                            arg_dimension(int(position)): Fraction(coeff)
                            for position, coeff in coefficients
                        },
                        Fraction(const),
                    ),
                    relation,
                )
                for relation, coefficients, const in rows
            ]
            decoded[indicator] = Polyhedron(dims, constraints)
        return decoded
    except (ValueError, KeyError, TypeError, IndexError):
        return None


# -- termination-certificate payloads ------------------------------------------


def _reason_template(reason, order):
    """Replace member names in a reason string by ``{m<i>}`` placeholders
    (longest names first, so ``p/2^bf`` never clobbers ``p/2^bff``)."""
    by_length = sorted(
        enumerate(order), key=lambda pair: -len(str(pair[1]))
    )
    for index, node in by_length:
        reason = reason.replace(str(node), "{m%d}" % index)
    return reason


def _reason_render(template, order):
    for index, node in enumerate(order):
        template = template.replace("{m%d}" % index, str(node))
    return template


def encode_scc_certificate(result, order):
    """Serialize one :class:`~repro.core.pipeline.SCCResult` relative
    to the fingerprint's canonical member *order*."""
    index_of = {node: i for i, node in enumerate(order)}
    data = {
        "schema": CERT_SCHEMA,
        "kind": "cert",
        "status": result.status,
        "rows": result.constraint_rows,
        "reason": _reason_template(result.reason, order),
    }
    if result.proof is not None:
        data["lambdas"] = [
            [
                index_of[node],
                {
                    str(position): _fraction_text(weight)
                    for position, weight in sorted(weights.items())
                },
            ]
            for node, weights in sorted(
                result.proof.lambdas.items(),
                key=lambda kv: index_of[kv[0]],
            )
        ]
        data["thetas"] = [
            [index_of[i], index_of[j], _fraction_text(value)]
            for (i, j), value in sorted(
                result.proof.thetas.items(),
                key=lambda kv: (index_of[kv[0][0]], index_of[kv[0][1]]),
            )
        ]
    return json.dumps(data, sort_keys=True, separators=(",", ":"))


def decode_scc_certificate(payload, order):
    """Decode a certificate payload against the current program's
    canonical member *order*.

    Returns ``{"status", "reason", "rows", "lambdas", "thetas"}`` with
    lambdas/thetas re-keyed to the current member nodes, or None when
    the payload is malformed (treated as a miss by callers).
    """
    try:
        data = json.loads(payload)
        if not isinstance(data, dict):
            return None
        if data.get("schema") != CERT_SCHEMA or data.get("kind") != "cert":
            return None
        status = data["status"]
        decoded = {
            "status": status,
            "reason": _reason_render(data.get("reason", ""), order),
            "rows": int(data.get("rows", 0)),
            "lambdas": None,
            "thetas": None,
        }
        if "lambdas" in data:
            decoded["lambdas"] = {
                order[int(index)]: {
                    int(position): Fraction(weight)
                    for position, weight in weights.items()
                }
                for index, weights in data["lambdas"]
            }
            decoded["thetas"] = {
                (order[int(i)], order[int(j)]): Fraction(value)
                for i, j, value in data.get("thetas", ())
            }
        return decoded
    except (ValueError, KeyError, TypeError, IndexError):
        return None
