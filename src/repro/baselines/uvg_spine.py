"""Ullman & Van Gelder's right-spine test [UVG88], simplified.

"Ullman and Van Gelder introduced the idea of using some notion of term
size to define a total order ... They used 'length of right spine' as
the measure of term size." (Section 1.1.)

The simplified executable version: choose one bound argument position
per SCC member; the right-spine-length polynomial of the head's chosen
argument must dominate the subgoal's coefficient-wise, with positive
total decrease around every dependency cycle.  No inter-argument
constraints, no argument combinations — precisely the two extensions
the paper adds.

(The original also classifies rules by a "uniqueness" property to get
polynomial time; our corpus programs all fall in the regime where the
simplification is faithful to what the method can and cannot prove.)
"""

from __future__ import annotations

from repro.sizes.norms import RIGHT_SPINE
from repro.baselines.common import (
    BaselineMethod,
    argument_choices,
    positive_cycles,
)


def spine_decrease(head_arg, subgoal_arg):
    """Guaranteed decrease of right-spine length, or None.

    ``size(head) - size(subgoal)`` must be a polynomial with
    nonnegative coefficients; its constant term is the guaranteed
    decrease (sizes of shared variables cancel).
    """
    difference = RIGHT_SPINE.size_expr(head_arg) - RIGHT_SPINE.size_expr(
        subgoal_arg
    )
    if any(coeff < 0 for _, coeff in difference.items()):
        return None
    if difference.const < 0:
        return None
    return difference.const


class UVGSpineMethod(BaselineMethod):
    """Single argument, right-spine measure."""

    name = "uvg88_spine"

    def prove_scc(self, members, pairs):
        """Method-specific decrease test for one SCC."""
        if not pairs:
            return False
        bound_positions = {m: m.bound_positions() for m in members}
        if any(not positions for positions in bound_positions.values()):
            return False
        for choice in argument_choices(members, bound_positions):
            edge_decrease = {}
            feasible = True
            for pair in pairs:
                head_arg = pair.head_args[choice[pair.head_node] - 1]
                subgoal_arg = pair.subgoal_args[choice[pair.subgoal_node] - 1]
                decrease = spine_decrease(head_arg, subgoal_arg)
                if decrease is None:
                    feasible = False
                    break
                edge = pair.edge
                edge_decrease[edge] = min(
                    edge_decrease.get(edge, decrease), decrease
                )
            if feasible and positive_cycles(members, edge_decrease):
                return True
        return False
