"""Single-argument structural-size decrease baseline.

The natural strengthening of the earlier single-argument tests with
the paper's own structural norm, but *without* the paper's two
extensions (linear combinations of several arguments, and imported
inter-argument constraints).  It sits between UVG'88 and this paper in
power, so the method-comparison table (experiment E2) shows exactly
which programs need which extension.
"""

from __future__ import annotations

from repro.sizes.norms import STRUCTURAL
from repro.baselines.common import (
    BaselineMethod,
    argument_choices,
    positive_cycles,
)


def structural_decrease(head_arg, subgoal_arg):
    """Guaranteed structural-size decrease, or None if it may grow."""
    difference = STRUCTURAL.size_expr(head_arg) - STRUCTURAL.size_expr(
        subgoal_arg
    )
    if any(coeff < 0 for _, coeff in difference.items()):
        return None
    if difference.const < 0:
        return None
    return difference.const


class SingleArgumentMethod(BaselineMethod):
    """One bound argument per predicate, structural norm."""

    name = "single_arg_structural"

    def prove_scc(self, members, pairs):
        """Method-specific decrease test for one SCC."""
        if not pairs:
            return False
        bound_positions = {m: m.bound_positions() for m in members}
        if any(not positions for positions in bound_positions.values()):
            return False
        for choice in argument_choices(members, bound_positions):
            edge_decrease = {}
            feasible = True
            for pair in pairs:
                head_arg = pair.head_args[choice[pair.head_node] - 1]
                subgoal_arg = pair.subgoal_args[choice[pair.subgoal_node] - 1]
                decrease = structural_decrease(head_arg, subgoal_arg)
                if decrease is None:
                    feasible = False
                    break
                edge = pair.edge
                edge_decrease[edge] = min(
                    edge_decrease.get(edge, decrease), decrease
                )
            if feasible and positive_cycles(members, edge_decrease):
                return True
        return False
