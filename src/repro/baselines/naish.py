"""Naish's subterm-subset termination test [Nai83].

"He gave an algorithm determining whether some subset of the bound
arguments of each predicate existed such that each recursive call was
guaranteed to reduce one or more elements of the subset without
changing others.  His notion of '<' was 'proper subterm'."
(Section 1.1 of the paper.)

Per SCC, the method searches subsets ``S(p)`` of each member's bound
positions such that for every rule × recursive-subgoal pair:

- for every position in the subset, the subgoal's argument is a
  subterm of (or equal to) the head's corresponding argument, and
- for at least one position it is a *proper* subterm.

The subset search is exponential in the number of bound arguments
(Sagiv and Ullman later made it "semi-polynomial"); SCC sizes in
practice keep it tiny, and a combination cap guards the pathological
case.

Limitations reproduced faithfully: the subterm order relates *the same
argument position* in head and call, so the paper's merge variant
(Example 5.1, where contents swap between positions) and perm
(Example 3.1, where the relation needs inter-argument reasoning) are
both out of reach.
"""

from __future__ import annotations

import itertools

from repro.lp.terms import Struct
from repro.baselines.common import BaselineMethod, positive_cycles


def is_subterm(candidate, term, proper=False):
    """Is *candidate* a (proper, if requested) subterm of *term*?

    Purely syntactic: variables must match exactly, as in Naish's
    partial order on terms.
    """
    if not proper and candidate == term:
        return True
    if isinstance(term, Struct):
        return any(
            is_subterm(candidate, arg, proper=False) for arg in term.args
        )
    return False


class NaishMethod(BaselineMethod):
    """Subset-of-bound-arguments subterm decrease."""

    name = "naish83"

    def __init__(self, max_combinations=4096):
        self.max_combinations = max_combinations

    def prove_scc(self, members, pairs):
        """Method-specific decrease test for one SCC."""
        if not pairs:
            return False
        pools = []
        for member in members:
            positions = member.bound_positions()
            subsets = [
                frozenset(c)
                for size in range(1, len(positions) + 1)
                for c in itertools.combinations(positions, size)
            ]
            if not subsets:
                return False
            pools.append([(member, subset) for subset in subsets])

        produced = 0
        for combination in itertools.product(*pools):
            produced += 1
            if produced > self.max_combinations:
                return False
            chosen = dict(combination)
            if self._subsets_work(members, pairs, chosen):
                return True
        return False

    def _subsets_work(self, members, pairs, chosen):
        edge_decrease = {}
        for pair in pairs:
            verdict = self._pair_decrease(pair, chosen)
            if verdict is None:
                return False
            edge = pair.edge
            edge_decrease[edge] = min(
                edge_decrease.get(edge, verdict), verdict
            )
        return positive_cycles(members, edge_decrease)

    def _pair_decrease(self, pair, chosen):
        """1 if some subset position strictly decreases, 0 if all are
        merely non-increasing, None if any increases (test fails)."""
        head_subset = chosen[pair.head_node]
        subgoal_subset = chosen[pair.subgoal_node]
        # The subset must be comparable positionwise; with mutual
        # recursion we require the chosen subsets to align by position
        # (Naish's method predates mutual recursion support — most
        # mutual SCCs simply fail here, matching Section 1.1's remark
        # that mutual recursion troubles the earlier methods).
        if head_subset != subgoal_subset:
            return None
        strict = False
        for position in head_subset:
            head_arg = pair.head_args[position - 1]
            subgoal_arg = pair.subgoal_args[position - 1]
            if is_subterm(subgoal_arg, head_arg, proper=True):
                strict = True
            elif subgoal_arg == head_arg:
                continue
            elif is_subterm(subgoal_arg, head_arg, proper=False):
                strict = True
            else:
                return None
        return 1 if strict else 0
