"""Baseline termination tests from the earlier literature.

The paper's evaluation claims are comparative ("several programs that
could not be shown to terminate by earlier published methods are
handled successfully").  To regenerate those claims as a real table we
implement executable versions of the earlier methods, sharing the
adorned-SCC front end with the main analyzer so the comparison isolates
the *decrease test*:

- :mod:`repro.baselines.naish` — Naish'83: a subset of bound argument
  positions such that every recursive call takes a subterm in at least
  one subset position and never grows any of them (subterm partial
  order).
- :mod:`repro.baselines.uvg_spine` — Ullman & Van Gelder'88
  (simplified): one bound argument per predicate whose *right spine
  length* never grows and strictly shrinks around every cycle.
- :mod:`repro.baselines.single_arg` — a single bound argument per
  predicate whose *structural size polynomial* dominates the callee's
  (coefficient-wise) with positive total decrease around every cycle;
  the natural "one argument, no inter-argument constraints"
  strengthening both prior methods suggest.

All baselines deliberately use **no inter-argument constraints** —
that is the paper's extension — and only single/subset argument
tracking — linear *combinations* are the paper's other extension.
"""

from repro.baselines.common import BaselineResult, BaselineMethod
from repro.baselines.naish import NaishMethod
from repro.baselines.uvg_spine import UVGSpineMethod
from repro.baselines.single_arg import SingleArgumentMethod

ALL_BASELINES = (NaishMethod(), UVGSpineMethod(), SingleArgumentMethod())

__all__ = [
    "BaselineResult",
    "BaselineMethod",
    "NaishMethod",
    "UVGSpineMethod",
    "SingleArgumentMethod",
    "ALL_BASELINES",
]
