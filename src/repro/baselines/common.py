"""Shared machinery for baseline termination methods.

Every baseline reuses the adorned dependency graph and SCC walk of the
main analyzer and plugs in only its own per-SCC decrease test, so the
method-comparison experiment (E2) isolates exactly the published
difference between the techniques.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.lp.program import BUILTIN_PREDICATES, Program
from repro.graph.scc import is_recursive_component, strongly_connected_components
from repro.core.adornment import AdornedPredicate, adorned_call_graph, clause_call_adornments

PROVED = "PROVED"
UNKNOWN = "UNKNOWN"


@dataclass
class BaselineResult:
    """Uniform verdict object across baseline methods."""

    method: str
    root: tuple
    root_mode: str
    status: str
    failing_sccs: list = field(default_factory=list)
    details: dict = field(default_factory=dict)

    @property
    def proved(self):
        """True when the verdict is PROVED."""
        return self.status == PROVED


@dataclass
class RecursivePair:
    """One rule × recursive-subgoal combination, term-level view.

    Baselines reason about the argument *terms* directly (subterm
    orders, spine lengths) rather than through Eq. 1.
    """

    clause: object
    head_node: AdornedPredicate
    subgoal_node: AdornedPredicate
    head_args: tuple
    subgoal_args: tuple

    @property
    def edge(self):
        """The (head, subgoal) dependency edge of this pair."""
        return (self.head_node, self.subgoal_node)


class BaselineMethod:
    """Template: subclasses implement :meth:`prove_scc`."""

    name = "abstract"

    def analyze(self, program, root, mode):
        """PROVED iff every reachable recursive SCC passes
        :meth:`prove_scc`; mirrors the main analyzer's contract."""
        if isinstance(program, str):
            program = Program.from_text(program)
        graph, _ = adorned_call_graph(program, tuple(root), mode)
        defined = program.defined_indicators()

        failing = []
        details = {}
        for component in strongly_connected_components(graph):
            members = tuple(
                node for node in component if node.indicator in defined
            )
            if not members:
                continue
            if not is_recursive_component(graph, component):
                continue
            pairs = collect_recursive_pairs(program, members)
            outcome = self.prove_scc(members, pairs)
            details[members] = outcome
            if not outcome:
                failing.append(members)
        return BaselineResult(
            method=self.name,
            root=tuple(root),
            root_mode=str(mode),
            status=UNKNOWN if failing else PROVED,
            failing_sccs=failing,
            details=details,
        )

    def prove_scc(self, members, pairs):
        """Method-specific decrease test for one SCC."""
        raise NotImplementedError


def collect_recursive_pairs(program, members):
    """All :class:`RecursivePair` objects of an adorned SCC."""
    member_set = set(members)
    pairs = []
    for node in members:
        for clause in program.clauses_for(node.indicator):
            adornments = clause_call_adornments(clause, node.adornment)
            for literal, adornment in zip(clause.body, adornments):
                if literal.indicator in BUILTIN_PREDICATES:
                    continue
                subgoal_node = AdornedPredicate(literal.indicator, adornment)
                if subgoal_node not in member_set:
                    continue
                pairs.append(
                    RecursivePair(
                        clause=clause,
                        head_node=node,
                        subgoal_node=subgoal_node,
                        head_args=tuple(clause.head_args),
                        subgoal_args=tuple(literal.args),
                    )
                )
    return pairs


def positive_cycles(members, edge_decrease):
    """True iff every cycle over *members* has positive total decrease.

    *edge_decrease* maps edges to their guaranteed (weak) decrease
    amount; missing edges do not exist.
    """
    from repro.graph.minplus import find_nonpositive_cycle

    return find_nonpositive_cycle(list(members), dict(edge_decrease)) is None


def argument_choices(members, bound_positions, limit=4096):
    """Iterate per-member single-argument choices (cartesian product).

    The search the earlier methods needed ("searching through subsets
    of bound arguments", Section 5); capped at *limit* combinations —
    baselines give up beyond it, mirroring their exponential behaviour.
    """
    import itertools

    pools = [
        [(member, position) for position in bound_positions[member]]
        for member in members
    ]
    produced = 0
    for combination in itertools.product(*pools):
        if produced >= limit:
            return
        produced += 1
        yield dict(combination)
