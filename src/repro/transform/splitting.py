"""Predicate splitting (Appendix A).

When a subgoal ``p(~t)`` carries term structure, it may fail to unify
with the heads of some rules for ``p``; those rules' behaviour can
obscure termination.  Splitting partitions ``p``'s rules into the
group the subgoal cannot unify with (renamed ``p__1``) and the group
it can (renamed ``p__2``), adds the bridge rules

    p(~X) :- p__1(~X).      p(~X) :- p__2(~X).

and specializes every other ``p`` subgoal in the program to ``p__1``
or ``p__2`` where only one group's heads can match.

"Repeated application of predicate splitting terminates, essentially
because rules are simply partitioned" — the driver still applies a
phase bound because splitting alternated with unfolding has no known
global termination proof (the paper leaves it open).
"""

from __future__ import annotations

import itertools

from repro.errors import TransformError
from repro.lp.program import Clause, Literal, Program
from repro.lp.terms import Struct, Var
from repro.lp.unify import rename_apart, rename_term_apart, unify

_split_counter = itertools.count(1)


def find_split_trigger(program):
    """The first subgoal occurrence that splits its predicate.

    Returns ``(clause_index, body_position)`` for a positive subgoal
    whose predicate's rules partition into a nonempty unifying and a
    nonempty non-unifying group, or None.
    """
    for clause_index, clause in enumerate(program.clauses):
        for body_position, literal in enumerate(clause.body):
            if not literal.positive:
                continue
            definitions = program.clauses_for(literal.indicator)
            if len(definitions) < 2:
                continue
            unifying, blocking = _partition(definitions, literal.atom)
            if unifying and blocking:
                return (clause_index, body_position)
    return None


def _partition(definitions, atom):
    """Split *definitions* into (unifying, non-unifying) vs *atom*."""
    unifying = []
    blocking = []
    probe = rename_term_apart(atom)
    for definition in definitions:
        renamed = rename_apart(definition)
        if unify(probe, renamed.head, occurs_check=True) is not None:
            unifying.append(definition)
        else:
            blocking.append(definition)
    return unifying, blocking


def split_predicate(program, trigger):
    """Apply predicate splitting at *trigger* (from
    :func:`find_split_trigger`); returns the transformed program."""
    clause_index, body_position = trigger
    literal = program.clauses[clause_index].body[body_position]
    indicator = literal.indicator
    name, arity = indicator
    definitions = program.clauses_for(indicator)
    unifying, blocking = _partition(definitions, literal.atom)
    if not unifying or not blocking:
        raise TransformError(
            "subgoal %s does not split %s/%d" % (literal.atom, name, arity)
        )

    tag = next(_split_counter)
    blocking_name = "%s__s%da" % (name, tag)
    unifying_name = "%s__s%db" % (name, tag)
    group_of = {}
    for definition in blocking:
        group_of[id(definition)] = blocking_name
    for definition in unifying:
        group_of[id(definition)] = unifying_name

    blocking_heads = [c.head for c in blocking]
    unifying_heads = [c.head for c in unifying]

    result = Program()
    for clause in program.clauses:
        if clause.indicator == indicator:
            new_name = group_of[id(clause)]
            new_head = _rename_head(clause.head, new_name)
            new_body = _specialize_body(
                clause.body, indicator,
                blocking_name, unifying_name,
                blocking_heads, unifying_heads,
            )
            result.add_clause(Clause(head=new_head, body=new_body))
        else:
            new_body = _specialize_body(
                clause.body, indicator,
                blocking_name, unifying_name,
                blocking_heads, unifying_heads,
            )
            result.add_clause(Clause(head=clause.head, body=new_body))

    # Bridge rules: p(~X) :- p__a(~X).   p(~X) :- p__b(~X).
    fresh_args = tuple(Var("S%d" % i) for i in range(1, arity + 1))
    bridge_head = Struct(name, fresh_args) if arity else None
    if bridge_head is None:
        raise TransformError("cannot split a propositional predicate")
    for group_name in (blocking_name, unifying_name):
        result.add_clause(
            Clause(
                head=bridge_head,
                body=(Literal(Struct(group_name, fresh_args)),),
            )
        )
    return result


def _rename_head(head, new_name):
    if isinstance(head, Struct):
        return Struct(new_name, head.args)
    raise TransformError("cannot rename propositional head %s" % head)


def _specialize_body(
    body, indicator, blocking_name, unifying_name,
    blocking_heads, unifying_heads,
):
    """Redirect each ``p`` literal to the unique group it can match."""
    new_body = []
    for literal in body:
        if literal.indicator != indicator:
            new_body.append(literal)
            continue
        matches_blocking = _matches_any(literal.atom, blocking_heads)
        matches_unifying = _matches_any(literal.atom, unifying_heads)
        if matches_blocking and not matches_unifying:
            new_body.append(_redirect(literal, blocking_name))
        elif matches_unifying and not matches_blocking:
            new_body.append(_redirect(literal, unifying_name))
        else:
            new_body.append(literal)  # both (or neither): keep the bridge
    return tuple(new_body)


def _matches_any(atom, heads):
    probe = rename_term_apart(atom)
    for head in heads:
        candidate = rename_term_apart(head)
        if unify(probe, candidate, occurs_check=True) is not None:
            return True
    return False


def _redirect(literal, new_name):
    atom = literal.atom
    if isinstance(atom, Struct):
        return Literal(Struct(new_name, atom.args), positive=literal.positive)
    raise TransformError("cannot redirect propositional literal %s" % atom)
