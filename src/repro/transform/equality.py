"""Positive-equality elimination (Appendix A, first paragraph).

"Any rule with positive equality has a logical equivalent without
positive equality; e.g. ``r(Z) :- U = f(Z), p(U)`` is equivalent to
``r(Z) :- p(f(Z))``."

Each positive ``=/2`` literal is removed by unifying its two sides
(with occurs check) and applying the unifier to the rest of the clause.
A clause whose equality cannot unify can never succeed and is dropped.
Negative equalities (``\\+ X = Y``) are left alone — they produce no
bindings.
"""

from __future__ import annotations

from repro.lp.program import Clause, Program
from repro.lp.unify import apply_subst, apply_subst_literal, unify


def eliminate_positive_equality(program):
    """Return an equivalent program with no positive ``=/2`` subgoals."""
    result = Program()
    for clause in program.clauses:
        rewritten = _eliminate_in_clause(clause)
        if rewritten is not None:
            result.add_clause(rewritten)
    return result


def _eliminate_in_clause(clause):
    """Rewrite one clause; None when an equality can never hold."""
    head = clause.head
    body = list(clause.body)
    index = 0
    while index < len(body):
        literal = body[index]
        if literal.positive and literal.indicator == ("=", 2):
            left, right = literal.atom.args
            subst = unify(left, right, occurs_check=True)
            if subst is None:
                return None
            head = apply_subst(head, subst)
            body = [
                apply_subst_literal(other, subst)
                for position, other in enumerate(body)
                if position != index
            ]
            continue  # re-examine from the same index
        index += 1
    return Clause(head=head, body=tuple(body))
