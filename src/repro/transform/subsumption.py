"""Clause subsumption elimination.

Example A.1 closes with: "Considerable further simplifications are
possible by subsumption, assuming a 'pure' language without
side-effects."  A clause ``C`` *subsumes* a clause ``D`` when some
substitution ``theta`` maps ``C``'s head to ``D``'s head and every
body literal of ``C theta`` into ``D``'s body (as a subset) — then
``D`` contributes no answers ``C`` does not, and can be dropped.

The subset matching is the classic theta-subsumption test; bodies here
are small, so the backtracking matcher is plenty.  Duplicate body
literals within one clause are also removed (``q2(f(g(X))) :- e(X),
e(X).`` becomes ``q2(f(g(X))) :- e(X).``), which is sound for the same
purity reason.
"""

from __future__ import annotations

from repro.lp.program import Clause, Program
from repro.lp.unify import apply_subst, rename_apart, unify


def subsumes(general, specific):
    """Does clause *general* theta-subsume clause *specific*?

    Requires a single substitution applied to *general* whose head
    equals *specific*'s head and whose body literals each occur in
    *specific*'s body (with matching polarity).
    """
    if general.indicator != specific.indicator:
        return False
    renamed = rename_apart(general)
    # Skolemize the specific clause: its variables act as constants
    # for subsumption (only the general side may be instantiated).
    specific = _skolemize(specific)
    subst = _match(renamed.head, specific.head, {})
    if subst is None:
        return False
    return _match_body(list(renamed.body), tuple(specific.body), subst)


def _skolemize(clause):
    """Replace each variable of *clause* with a fresh constant."""
    from repro.lp.terms import Atom
    from repro.lp.unify import apply_subst_clause

    mapping = {
        var: Atom("$sk_%s" % var.name) for var in clause.variables()
    }
    return apply_subst_clause(clause, mapping)


def _match(pattern, target, subst):
    """One-way matching: instantiate *pattern* only."""
    from repro.lp.terms import Atom, Struct, Var

    pattern = apply_subst(pattern, subst)
    if isinstance(pattern, Var):
        new = dict(subst)
        existing = new.get(pattern)
        if existing is not None:
            return new if existing == target else None
        new[pattern] = target
        return new
    if isinstance(pattern, Atom):
        return dict(subst) if pattern == target else None
    if not isinstance(target, Struct):
        return None
    if pattern.functor != target.functor or pattern.arity != target.arity:
        return None
    current = dict(subst)
    for p_arg, t_arg in zip(pattern.args, target.args):
        current = _match(p_arg, t_arg, current)
        if current is None:
            return None
    return current


def _match_body(pattern_literals, target_body, subst):
    if not pattern_literals:
        return True
    first, rest = pattern_literals[0], pattern_literals[1:]
    for candidate in target_body:
        if candidate.positive != first.positive:
            continue
        extended = _match(first.atom, candidate.atom, subst)
        if extended is None:
            continue
        if _match_body(rest, target_body, extended):
            return True
    return False


def _dedupe_body(clause):
    seen = []
    for literal in clause.body:
        if literal not in seen:
            seen.append(literal)
    if len(seen) == len(clause.body):
        return clause
    return Clause(head=clause.head, body=tuple(seen))


def eliminate_subsumed(program):
    """Drop every clause subsumed by another clause of the program.

    Clause order is preserved for the survivors; within-clause
    duplicate literals are removed first.  When two clauses subsume
    each other (variants), the earlier one wins.
    """
    clauses = [_dedupe_body(clause) for clause in program.clauses]
    kept = []
    for index, clause in enumerate(clauses):
        dominated = False
        for other_index, other in enumerate(clauses):
            if other_index == index:
                continue
            if not subsumes(other, clause):
                continue
            if subsumes(clause, other):
                # Variants: keep the first occurrence only.
                dominated = other_index < index
            else:
                dominated = True
            if dominated:
                break
        if not dominated:
            kept.append(clause)
    result = Program()
    for clause in kept:
        result.add_clause(clause)
    return result
