"""Alternating-phase transformation driver (Appendix A).

"Predicate splitting may introduce mutual recursion, while safe
unfolding may introduce additional term structure ... it is not clear
whether repeatedly using both of these heuristics together is certain
to terminate.  Until this question is settled, an automated application
should run alternate phases of safe unfolding and predicate splitting,
and halt after a fixed number of phases, say 3 of each."

:func:`normalize_program` does exactly that: positive-equality
elimination once, then up to *phases* rounds of (unfold-to-quiescence,
split-to-quiescence), with per-phase step caps as a safety net, and an
optional reachability prune at the end.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.transform.equality import eliminate_positive_equality
from repro.transform.splitting import find_split_trigger, split_predicate
from repro.transform.unfolding import (
    remove_unreachable,
    safe_unfold,
    safe_unfold_candidates,
)


@dataclass
class TransformLog:
    """Record of which transformations fired, for reports and tests."""

    steps: list = field(default_factory=list)

    def record(self, kind, detail):
        """Append one (kind, detail) step."""
        self.steps.append((kind, detail))

    def count(self, kind):
        """Number of recorded steps of *kind*."""
        return sum(1 for step_kind, _ in self.steps if step_kind == kind)

    def __str__(self):
        return "\n".join("%s: %s" % step for step in self.steps)


def normalize_program(
    program, phases=3, max_steps_per_phase=25, roots=None, log=None,
    subsumption=False,
):
    """Run Appendix A preprocessing; returns (program, log).

    *roots* (indicators) enable dead-predicate pruning after the
    phases — the paper's "if p and p1 are not referenced elsewhere,
    their rules may be discarded".  ``subsumption=True`` additionally
    drops subsumed clauses at the end ("considerable further
    simplifications are possible by subsumption, assuming a 'pure'
    language").
    """
    log = log or TransformLog()

    program = eliminate_positive_equality(program)
    log.record("equality", "positive equalities eliminated")

    for phase in range(1, phases + 1):
        changed = False

        steps = 0
        while steps < max_steps_per_phase:
            candidates = safe_unfold_candidates(program)
            if not candidates:
                break
            target = candidates[0]
            program = safe_unfold(program, target)
            log.record(
                "unfold", "phase %d: unfolded %s/%d" % (phase, *target)
            )
            changed = True
            steps += 1

        steps = 0
        while steps < max_steps_per_phase:
            trigger = find_split_trigger(program)
            if trigger is None:
                break
            clause = program.clauses[trigger[0]]
            literal = clause.body[trigger[1]]
            program = split_predicate(program, trigger)
            log.record(
                "split",
                "phase %d: split %s/%d at subgoal %s"
                % (phase, *literal.indicator, literal.atom),
            )
            changed = True
            steps += 1

        if not changed:
            break

    if roots is not None:
        before = len(program)
        program = remove_unreachable(program, roots)
        if len(program) != before:
            log.record(
                "prune", "removed %d unreachable clauses" % (before - len(program))
            )

    if subsumption:
        from repro.transform.subsumption import eliminate_subsumed

        before = len(program)
        program = eliminate_subsumed(program)
        if len(program) != before:
            log.record(
                "subsume",
                "removed %d subsumed clauses" % (before - len(program)),
            )
    return _tidy_variables(program), log


def _tidy_variables(program):
    """Rename unfolding-generated variables back to parseable names."""
    from repro.lp.program import Program
    from repro.lp.unify import canonicalize_clause_variables

    tidy = Program()
    for clause in program.clauses:
        tidy.add_clause(canonicalize_clause_variables(clause))
    return tidy
