"""Syntactic normal-form transformations (Appendix A).

Three rewrites expose the "true computational structure" of rules
before termination analysis:

- :mod:`repro.transform.equality` — positive-equality elimination
  (``r(Z) :- U = f(Z), p(U)`` becomes ``r(Z) :- p(f(Z))``);
- :mod:`repro.transform.unfolding` — *safe unfolding*: a predicate
  none of whose rules call it may be unfolded away, shrinking its SCC;
- :mod:`repro.transform.splitting` — *predicate splitting*: when a
  subgoal cannot unify with some rule heads of its predicate, the
  predicate is partitioned into the unifying and non-unifying parts.

Splitting can introduce mutual recursion and unfolding can introduce
term structure, so (per the paper) the :mod:`repro.transform.driver`
alternates bounded phases of each — "say 3 of each".
"""

from repro.transform.equality import eliminate_positive_equality
from repro.transform.splitting import (
    find_split_trigger,
    split_predicate,
)
from repro.transform.unfolding import (
    safe_unfold,
    safe_unfold_candidates,
)
from repro.transform.driver import TransformLog, normalize_program
from repro.transform.subsumption import eliminate_subsumed, subsumes

__all__ = [
    "eliminate_positive_equality",
    "find_split_trigger",
    "split_predicate",
    "safe_unfold",
    "safe_unfold_candidates",
    "TransformLog",
    "normalize_program",
    "eliminate_subsumed",
    "subsumes",
]
