"""Safe unfolding (Appendix A).

Unfolding is resolution: a subgoal ``p(~Z)`` in a rule is replaced by
the body of each rule for ``p``, under the most general unifier of the
rule's head with the subgoal.  *Safe* unfolding is the special case in
which no rule for ``p`` has ``p`` as a subgoal; then every positive
``p`` subgoal can be replaced, and ``p`` drops out of its SCC of the
dependency graph.  "Repeated application of safe unfolding must
terminate because SCCs shrink upon each application."

Candidate selection targets what the transformation is for: predicates
in *multi-member* SCCs (mutual recursion) whose own rules do not call
them, and which are never called under negation from inside their SCC
(negative occurrences cannot be unfolded, so the SCC would not shrink).
"""

from __future__ import annotations

from repro.errors import TransformError
from repro.lp.program import Clause, Program
from repro.lp.unify import (
    apply_subst,
    apply_subst_literal,
    rename_apart,
    unify,
)


def safe_unfold_candidates(program):
    """Predicates eligible for safe unfolding, deterministically ordered.

    A candidate is a defined predicate ``p`` such that:

    - ``p`` lies in an SCC with at least two predicates (the point of
      the transformation is to break mutual recursion),
    - no rule of ``p`` has a ``p`` subgoal (the "safe" condition),
    - every occurrence of ``p`` inside its SCC's rules is positive.
    """
    graph = program.dependency_graph()
    candidates = []
    for component in program.sccs():
        if len(component) < 2:
            continue
        members = set(component)
        for indicator in sorted(component, key=repr):
            if program.predicate(*indicator) is None:
                continue
            if _calls_itself(program, indicator):
                continue
            if _negated_within(program, indicator, members):
                continue
            candidates.append(indicator)
    return candidates


def _calls_itself(program, indicator):
    for clause in program.clauses_for(indicator):
        for literal in clause.body:
            if literal.indicator == indicator:
                return True
    return False


def _negated_within(program, indicator, members):
    for member in members:
        for clause in program.clauses_for(member):
            for literal in clause.body:
                if not literal.positive and literal.indicator == indicator:
                    return True
    return False


def safe_unfold(program, indicator):
    """Unfold every positive occurrence of *indicator* away.

    The predicate's own rules are kept (callers outside the program
    text may still reference it); use
    :func:`remove_unreachable` afterwards to prune dead predicates.
    """
    if _calls_itself(program, indicator):
        raise TransformError(
            "%s/%d calls itself; safe unfolding does not apply" % indicator
        )
    definitions = program.clauses_for(indicator)
    if not definitions:
        raise TransformError("%s/%d has no rules to unfold" % indicator)

    result = Program()
    for clause in program.clauses:
        for unfolded in _unfold_clause(clause, indicator, definitions):
            result.add_clause(unfolded)
    return result


def _unfold_clause(clause, indicator, definitions):
    """Yield the clauses replacing *clause* (itself, if no occurrence)."""
    position = _first_positive_occurrence(clause, indicator)
    if position is None:
        yield clause
        return
    subgoal = clause.body[position]
    for definition in definitions:
        renamed = rename_apart(definition)
        subst = unify(subgoal.atom, renamed.head, occurs_check=True)
        if subst is None:
            continue
        new_body = (
            tuple(
                apply_subst_literal(lit, subst)
                for lit in clause.body[:position]
            )
            + tuple(
                apply_subst_literal(lit, subst) for lit in renamed.body
            )
            + tuple(
                apply_subst_literal(lit, subst)
                for lit in clause.body[position + 1:]
            )
        )
        new_clause = Clause(
            head=apply_subst(clause.head, subst), body=new_body
        )
        # The spliced body may contain further occurrences (from later
        # positions of the original body); recurse until none remain.
        yield from _unfold_clause(new_clause, indicator, definitions)


def _first_positive_occurrence(clause, indicator):
    if clause.indicator == indicator:
        return None  # never rewrite the predicate's own rules
    for position, literal in enumerate(clause.body):
        if literal.positive and literal.indicator == indicator:
            return position
    return None


def remove_unreachable(program, roots):
    """Drop predicates unreachable from *roots* (dead after unfolding).

    *roots* is an iterable of indicators; EDB predicates have no rules
    and are unaffected.
    """
    graph = program.dependency_graph()
    reachable = set()
    worklist = [tuple(root) for root in roots]
    while worklist:
        node = worklist.pop()
        if node in reachable:
            continue
        reachable.add(node)
        if graph.has_node(node):
            worklist.extend(graph.successors(node))
    result = Program()
    for clause in program.clauses:
        if clause.indicator in reachable:
            result.add_clause(clause)
    return result
