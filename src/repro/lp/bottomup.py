"""Semi-naive bottom-up evaluation.

The paper's opening motivation: "There exist two approaches to rule
evaluation: top-down and bottom-up.  Typically, one converges
naturally and the other does not on a given set of interdependent
rules."  The classic witness is left-recursive transitive closure —

    tc(X, Y) :- e(X, Y).
    tc(X, Y) :- tc(X, Z), e(Z, Y).

— which loops under Prolog's top-down strategy but reaches a fixpoint
bottom-up on any finite edge relation.  This module supplies that other
half of the capture-rule story: a semi-naive (differential) fixpoint
evaluator over ground facts.

Scope and budgets
-----------------
Rules must be *range restricted* (every head variable occurs in a
positive body literal) so derived facts are ground.  Negation is
supported for stratified programs (negated predicates must be fully
evaluated in an earlier stratum).  With function symbols the fixpoint
may be infinite; ``max_term_size`` and ``max_facts`` bound the
computation, and the result records whether it truly converged.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import AnalysisError
from repro.lp.program import BUILTIN_PREDICATES, Program
from repro.lp.terms import Atom, Struct
from repro.lp.unify import apply_subst, unify


@dataclass
class BottomUpResult:
    """Outcome of a bottom-up evaluation.

    ``converged`` is True when a genuine fixpoint was reached within
    the budgets; ``facts`` maps indicators to sets of ground atoms.
    """

    facts: dict
    converged: bool
    rounds: int

    def relation(self, name, arity):
        """All derived facts of name/arity as a frozenset."""
        return frozenset(self.facts.get((name, arity), ()))

    def holds(self, atom):
        """Membership test for one ground atom."""
        indicator = (
            (atom.functor, atom.arity)
            if isinstance(atom, Struct)
            else (atom.name, 0)
        )
        return atom in self.facts.get(indicator, ())

    def count(self, name, arity):
        """Number of recorded steps of *kind*."""
        return len(self.facts.get((name, arity), ()))


def is_datalog(program):
    """True when the program is function-free (pure Datalog).

    Every argument of every head and body atom must be a variable or a
    constant.  For such programs, bottom-up evaluation over a finite
    EDB always reaches a fixpoint — the "such-and-such conditions" of a
    bottom-up capture rule.
    """
    from repro.lp.terms import Var

    def flat(atom):
        """True when every argument is a variable or constant."""
        if isinstance(atom, Atom):
            return True
        return all(
            isinstance(argument, (Var, Atom)) for argument in atom.args
        )

    for clause in program.clauses:
        if not flat(clause.head):
            return False
        for literal in clause.body:
            if literal.indicator in BUILTIN_PREDICATES:
                continue
            if not flat(literal.atom):
                return False
    return True


class BottomUpEngine:
    """Stratified semi-naive evaluation of a program's facts."""

    def __init__(self, program, max_term_size=None, max_facts=100000):
        if not isinstance(program, Program):
            raise AnalysisError("expected a Program")
        self.program = program
        self.max_term_size = max_term_size
        self.max_facts = max_facts
        self._strata = self._stratify()

    # -- stratification -----------------------------------------------------

    def _stratify(self):
        """SCCs of the dependency graph, bottom-up; reject negation
        inside an SCC (non-stratified programs are out of scope)."""
        components = self.program.sccs()
        position = {}
        for index, component in enumerate(components):
            for indicator in component:
                position[indicator] = index
        for clause in self.program.clauses:
            for literal in clause.body:
                if literal.positive:
                    continue
                if literal.indicator in BUILTIN_PREDICATES:
                    continue
                if position.get(literal.indicator) == position.get(
                    clause.indicator
                ):
                    raise AnalysisError(
                        "program is not stratified: %s negates %s/%d "
                        "inside its own SCC" % (clause, *literal.indicator)
                    )
        return components

    # -- evaluation ------------------------------------------------------------

    def evaluate(self):
        """Run every stratum to fixpoint (or budget); return the result."""
        facts = {}
        total_rounds = 0
        converged = True
        for component in self._strata:
            members = [
                indicator
                for indicator in component
                if self.program.predicate(*indicator) is not None
            ]
            if not members:
                continue
            rounds, ok = self._evaluate_stratum(members, facts)
            total_rounds += rounds
            converged = converged and ok
            if not ok:
                break
        return BottomUpResult(
            facts=facts, converged=converged, rounds=total_rounds
        )

    def _evaluate_stratum(self, members, facts):
        member_set = set(members)
        for indicator in members:
            facts.setdefault(indicator, set())

        # Seed round: every clause evaluated against current knowledge.
        delta = {}
        for indicator in members:
            fresh = set()
            for clause in self.program.clauses_for(indicator):
                fresh |= self._fire(clause, facts, None, member_set)
            fresh -= facts[indicator]
            delta[indicator] = fresh
            facts[indicator] |= fresh

        rounds = 1
        while any(delta.values()):
            if sum(len(v) for v in facts.values()) > self.max_facts:
                return rounds, False
            new_delta = {indicator: set() for indicator in members}
            for indicator in members:
                for clause in self.program.clauses_for(indicator):
                    produced = self._fire(
                        clause, facts, delta, member_set
                    )
                    new_delta[indicator] |= produced - facts[indicator]
            for indicator in members:
                facts[indicator] |= new_delta[indicator]
            delta = new_delta
            rounds += 1
        return rounds, True

    def _fire(self, clause, facts, delta, member_set):
        """All new head instances of *clause*.

        Semi-naive refinement: when *delta* is given, at least one
        recursive body literal must match a delta fact.
        """
        recursive_positions = [
            index
            for index, literal in enumerate(clause.body)
            if literal.positive and literal.indicator in member_set
        ]
        results = set()
        if delta is None or not recursive_positions:
            if delta is not None:
                return results  # nothing new can fire a non-recursive rule
            self._join(clause, 0, {}, facts, None, None, results)
            return results
        for pivot in recursive_positions:
            self._join(clause, 0, {}, facts, delta, pivot, results)
        return results

    def _join(self, clause, index, subst, facts, delta, pivot, results):
        if index == len(clause.body):
            head = apply_subst(clause.head, subst)
            if not head.is_ground():
                raise AnalysisError(
                    "rule is not range restricted: %s" % clause
                )
            if (
                self.max_term_size is not None
                and head.structural_size() > self.max_term_size
            ):
                return
            results.add(head)
            return
        literal = clause.body[index]
        indicator = literal.indicator

        if indicator in BUILTIN_PREDICATES:
            if self._builtin_holds(literal, subst):
                self._join(
                    clause, index + 1, subst, facts, delta, pivot, results
                )
            return

        if not literal.positive:
            goal = apply_subst(literal.atom, subst)
            if not goal.is_ground():
                raise AnalysisError(
                    "negation over unbound variables in %s" % clause
                )
            if goal not in facts.get(indicator, ()):
                self._join(
                    clause, index + 1, subst, facts, delta, pivot, results
                )
            return

        if index == pivot:
            source = delta.get(indicator, ())
        else:
            source = facts.get(indicator, ())
        goal = apply_subst(literal.atom, subst)
        for fact in source:
            extended = unify(goal, fact, subst)
            if extended is not None:
                self._join(
                    clause, index + 1, extended, facts, delta, pivot, results
                )

    def _builtin_holds(self, literal, subst):
        from repro.lp.engine import _arith_eval

        name, _ = literal.indicator
        atom = apply_subst(literal.atom, subst)
        args = atom.args if isinstance(atom, Struct) else ()
        outcome = None
        if name == "true":
            outcome = True
        elif name == "fail":
            outcome = False
        elif name in ("<", ">", "=<", ">="):
            left = _arith_eval(args[0])
            right = _arith_eval(args[1])
            outcome = {
                "<": left < right,
                ">": left > right,
                "=<": left <= right,
                ">=": left >= right,
            }[name]
        elif name == "==":
            outcome = args[0] == args[1]
        elif name == "\\==":
            outcome = args[0] != args[1]
        elif name in ("=", "\\="):
            equal = unify(args[0], args[1]) is not None
            outcome = equal if name == "=" else not equal
        else:
            raise AnalysisError(
                "builtin %s is not supported bottom-up" % name
            )
        if not literal.positive:
            outcome = not outcome
        return outcome
