"""A budgeted top-down SLD resolution engine.

Executes programs with the Prolog strategy the paper analyzes: top-down,
left-to-right goal selection, clauses tried in source order, depth-first
backtracking.  The engine exists to validate termination verdicts
*empirically*: a query against a procedure the analyzer proved
terminating must finish within a (generous) budget, and known
non-terminators must exhaust it.

Budgets
-------
``max_depth`` bounds the call-stack depth (goal-reduction nesting) and
``max_steps`` bounds the total number of clause-resolution attempts.
Exceeding either raises :class:`~repro.errors.EngineLimitError`;
:meth:`SLDEngine.terminates` converts that into a boolean verdict.

Supported builtins: ``=``, ``\\=``, ``==``, ``\\==``, comparison
operators over integer arithmetic, ``is``, ``true``, ``fail``, ``!``
(full cut semantics), and negation as failure for ``\\+``.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass

from repro.errors import EngineLimitError, UnificationError
from repro.lp.program import BUILTIN_PREDICATES, Literal, Program
from repro.lp.terms import Atom, Struct, Term, Var, term_variables
from repro.lp.unify import apply_subst, rename_apart, unify


class _Cut(Exception):
    """Internal control signal carrying the barrier being cut to."""

    def __init__(self, barrier):
        self.barrier = barrier


@dataclass
class SolveResult:
    """Outcome of running a query.

    ``completed`` is True when the search space was fully explored
    within budget (the query *terminated*); otherwise the budget was
    exhausted and ``solutions`` holds whatever was found first.
    """

    solutions: list
    completed: bool
    steps: int
    max_depth_seen: int

    @property
    def succeeded(self):
        """True when at least one solution was found."""
        return bool(self.solutions)


class SLDEngine:
    """Top-down, left-to-right resolution over a :class:`Program`."""

    def __init__(self, program, occurs_check=False):
        if not isinstance(program, Program):
            raise TypeError("expected a Program, got %r" % (program,))
        self.program = program
        self.occurs_check = occurs_check
        self._barrier_counter = itertools.count(1)
        self._steps = 0
        self._max_steps = 0
        self._max_depth = 0
        self._max_depth_seen = 0

    # -- public API ---------------------------------------------------------

    def solve(self, query, max_depth=400, max_steps=200000, max_solutions=None):
        """Run *query* (text or list of Literals) to completion or budget.

        Returns a :class:`SolveResult`.  Each solution is a dict mapping
        the query's variables to their bound terms.
        """
        literals = self._normalize_query(query)
        query_vars = []
        for literal in literals:
            for var in term_variables(literal.atom):
                if var not in query_vars:
                    query_vars.append(var)

        self._steps = 0
        self._max_steps = max_steps
        self._max_depth = max_depth
        self._max_depth_seen = 0

        barrier = next(self._barrier_counter)
        goals = tuple((lit, barrier) for lit in literals)
        solutions = []
        completed = True

        # Deep SLD derivations nest several Python frames per goal
        # reduction; raise the interpreter limit so the *engine's*
        # depth budget is what decides, not CPython's.
        import sys

        old_limit = sys.getrecursionlimit()
        sys.setrecursionlimit(max(old_limit, 20 * max_depth + 1000))
        try:
            for subst in self._solve_goals(goals, {}, 0):
                solutions.append(
                    {var: apply_subst(var, subst) for var in query_vars}
                )
                if max_solutions is not None and len(solutions) >= max_solutions:
                    completed = True
                    break
        except _Cut:
            pass  # a top-level cut simply commits; search is complete
        except EngineLimitError:
            completed = False
        except RecursionError:
            completed = False  # treated like an exhausted depth budget
        finally:
            sys.setrecursionlimit(old_limit)
        return SolveResult(
            solutions=solutions,
            completed=completed,
            steps=self._steps,
            max_depth_seen=self._max_depth_seen,
        )

    def terminates(self, query, max_depth=400, max_steps=200000):
        """True if the full search for *query* finishes within budget."""
        return self.solve(query, max_depth=max_depth, max_steps=max_steps).completed

    # -- helpers --------------------------------------------------------------

    def _normalize_query(self, query):
        if isinstance(query, str):
            from repro.lp.parser import parse_query

            return [
                lit
                for term in parse_query(query)
                for lit in _term_to_literals(term)
            ]
        literals = []
        for item in query:
            if isinstance(item, Literal):
                literals.append(item)
            elif isinstance(item, Term):
                literals.extend(_term_to_literals(item))
            else:
                raise UnificationError("bad query element: %r" % (item,))
        return literals

    def _tick(self, depth):
        self._steps += 1
        self._max_depth_seen = max(self._max_depth_seen, depth)
        if self._steps > self._max_steps:
            raise EngineLimitError(
                "step budget exhausted", depth=depth, steps=self._steps
            )
        if depth > self._max_depth:
            raise EngineLimitError(
                "depth budget exhausted", depth=depth, steps=self._steps
            )

    # -- core search ----------------------------------------------------------

    def _solve_goals(self, goals, subst, depth):
        """Yield substitutions solving the (literal, barrier) sequence."""
        if not goals:
            yield subst
            return
        (literal, barrier), rest = goals[0], goals[1:]
        atom = apply_subst(literal.atom, subst)
        indicator = _indicator(atom)

        if indicator == ("!", 0):
            yield from self._solve_goals(rest, subst, depth)
            raise _Cut(barrier)

        if not literal.positive:
            if not self._provable(atom, subst, depth):
                yield from self._solve_goals(rest, subst, depth)
            return

        if indicator in BUILTIN_PREDICATES:
            for new_subst in self._solve_builtin(atom, indicator, subst, depth):
                yield from self._solve_goals(rest, new_subst, depth)
            return

        for new_subst in self._call(atom, indicator, subst, depth):
            yield from self._solve_goals(rest, new_subst, depth)

    def _call(self, atom, indicator, subst, depth):
        """Resolve a user-predicate call against its clauses."""
        clauses = self.program.clauses_for(indicator)
        barrier = next(self._barrier_counter)
        for clause in clauses:
            self._tick(depth)
            renamed = rename_apart(clause)
            new_subst = unify(
                atom, renamed.head, subst, occurs_check=self.occurs_check
            )
            if new_subst is None:
                continue
            goals = tuple((lit, barrier) for lit in renamed.body)
            try:
                yield from self._solve_goals(goals, new_subst, depth + 1)
            except _Cut as cut:
                if cut.barrier != barrier:
                    raise
                return

    def _provable(self, atom, subst, depth):
        """Negation as failure: does *atom* have at least one solution?"""
        barrier = next(self._barrier_counter)
        goals = ((Literal(atom), barrier),)
        try:
            for _ in self._solve_goals(goals, subst, depth + 1):
                return True
        except _Cut:
            return True
        return False

    # -- builtins --------------------------------------------------------------

    def _solve_builtin(self, atom, indicator, subst, depth):
        self._tick(depth)
        name, arity = indicator
        if name == "true":
            yield subst
            return
        if name == "fail":
            return
        args = atom.args if isinstance(atom, Struct) else ()
        if name == "=":
            new_subst = unify(
                args[0], args[1], subst, occurs_check=self.occurs_check
            )
            if new_subst is not None:
                yield new_subst
            return
        if name == "\\=":
            if unify(args[0], args[1], subst, occurs_check=self.occurs_check) is None:
                yield subst
            return
        if name == "==":
            if apply_subst(args[0], subst) == apply_subst(args[1], subst):
                yield subst
            return
        if name == "\\==":
            if apply_subst(args[0], subst) != apply_subst(args[1], subst):
                yield subst
            return
        if name == "is":
            value = Atom(_arith_eval(apply_subst(args[1], subst)))
            new_subst = unify(args[0], value, subst)
            if new_subst is not None:
                yield new_subst
            return
        if name in ("<", ">", "=<", ">="):
            left = _arith_eval(apply_subst(args[0], subst))
            right = _arith_eval(apply_subst(args[1], subst))
            outcome = {
                "<": left < right,
                ">": left > right,
                "=<": left <= right,
                ">=": left >= right,
            }[name]
            if outcome:
                yield subst
            return
        raise UnificationError("unhandled builtin %s/%d" % (name, arity))


def _indicator(atom):
    if isinstance(atom, Struct):
        return (atom.functor, atom.arity)
    return (atom.name, 0)


def _term_to_literals(term):
    """Translate a parsed goal term into literals (handling ``\\+``)."""
    if isinstance(term, Struct) and term.functor == "\\+" and term.arity == 1:
        return [Literal(term.args[0], positive=False)]
    return [Literal(term)]


_ARITH_OPS = {
    ("+", 2): lambda a, b: a + b,
    ("-", 2): lambda a, b: a - b,
    ("*", 2): lambda a, b: a * b,
    ("//", 2): lambda a, b: a // b,
    ("/", 2): lambda a, b: a // b,
    ("mod", 2): lambda a, b: a % b,
    ("^", 2): lambda a, b: a**b,
    ("-", 1): lambda a: -a,
    ("+", 1): lambda a: a,
}


def _arith_eval(term):
    """Evaluate an arithmetic expression over integer constants."""
    if isinstance(term, Atom) and isinstance(term.name, int):
        return term.name
    if isinstance(term, Var):
        raise UnificationError("arithmetic on unbound variable %s" % term)
    if isinstance(term, Struct):
        op = _ARITH_OPS.get((term.functor, term.arity))
        if op is not None:
            return op(*(_arith_eval(arg) for arg in term.args))
    raise UnificationError("not an arithmetic expression: %s" % term)
