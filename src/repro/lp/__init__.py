"""Logic-program substrate: terms, parsing, unification, SLD engine.

This package implements the Prolog-like language the paper analyzes:

- :mod:`repro.lp.terms` — variables, atoms, compound terms, lists.
- :mod:`repro.lp.tokenizer` / :mod:`repro.lp.parser` — a Prolog-subset
  reader with operator precedence, lists, and comments.
- :mod:`repro.lp.program` — clauses, procedures, programs.
- :mod:`repro.lp.unify` — unification with optional occurs check.
- :mod:`repro.lp.engine` — a budgeted top-down SLD resolution engine used
  to validate termination verdicts empirically.
- :mod:`repro.lp.generate` — random well-moded query/term generators.
"""

from repro.lp.terms import (
    Atom,
    Term,
    Var,
    Struct,
    cons,
    make_list,
    list_elements,
    term_variables,
)
from repro.lp.modes import ModeDeclaration
from repro.lp.parser import parse_program, parse_term, parse_query
from repro.lp.program import Clause, Literal, Predicate, Program
from repro.lp.unify import unify, apply_subst, compose_subst, rename_apart
from repro.lp.engine import SLDEngine, SolveResult
from repro.lp.bottomup import BottomUpEngine, BottomUpResult, is_datalog

__all__ = [
    "Atom",
    "Term",
    "Var",
    "Struct",
    "cons",
    "make_list",
    "list_elements",
    "term_variables",
    "ModeDeclaration",
    "parse_program",
    "parse_term",
    "parse_query",
    "Clause",
    "Literal",
    "Predicate",
    "Program",
    "unify",
    "apply_subst",
    "compose_subst",
    "rename_apart",
    "SLDEngine",
    "SolveResult",
    "BottomUpEngine",
    "BottomUpResult",
    "is_datalog",
]
