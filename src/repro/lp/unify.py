"""Unification, substitutions, and renaming apart.

Substitutions are plain dicts mapping :class:`~repro.lp.terms.Var` to
:class:`~repro.lp.terms.Term`.  They are kept *idempotent*: bindings are
fully dereferenced when recorded, so applying a substitution once fully
instantiates a term.
"""

from __future__ import annotations

import itertools

from repro.lp.terms import Atom, Struct, Term, Var


def apply_subst(term, subst):
    """Return *term* with every bound variable replaced, recursively."""
    if isinstance(term, Var):
        bound = subst.get(term)
        if bound is None:
            return term
        # Idempotent substitutions make this a single step, but tolerate
        # chains produced by hand-built substitutions.
        return apply_subst(bound, subst) if bound != term else term
    if isinstance(term, Struct):
        new_args = tuple(apply_subst(arg, subst) for arg in term.args)
        if new_args == term.args:
            return term
        return Struct(term.functor, new_args)
    return term


def apply_subst_literal(literal, subst):
    """Apply a substitution to a body literal, preserving polarity."""
    from repro.lp.program import Literal

    return Literal(apply_subst(literal.atom, subst), positive=literal.positive)


def apply_subst_clause(clause, subst):
    """Apply a substitution to a whole clause."""
    from repro.lp.program import Clause

    return Clause(
        head=apply_subst(clause.head, subst),
        body=tuple(apply_subst_literal(lit, subst) for lit in clause.body),
    )


def compose_subst(first, second):
    """Composition: applying the result equals applying *first* then
    *second*."""
    composed = {
        var: apply_subst(term, second) for var, term in first.items()
    }
    for var, term in second.items():
        if var not in composed:
            composed[var] = term
    # Drop trivial bindings x -> x.
    return {var: term for var, term in composed.items() if term != var}


def occurs_in(var, term, subst):
    """True if *var* occurs in *term* under *subst*."""
    stack = [term]
    while stack:
        current = apply_subst(stack.pop(), subst)
        if isinstance(current, Var):
            if current == var:
                return True
        elif isinstance(current, Struct):
            stack.extend(current.args)
    return False


def unify(left, right, subst=None, occurs_check=True):
    """Unify two terms; return the extended substitution or None.

    The input substitution is never mutated.  With ``occurs_check=False``
    the function mimics standard Prolog (and can build cyclic bindings —
    callers of the engine accept that trade-off for speed).
    """
    subst = dict(subst) if subst else {}
    if _unify_into(left, right, subst, occurs_check):
        return subst
    return None


def _unify_into(left, right, subst, occurs_check):
    stack = [(left, right)]
    while stack:
        a, b = stack.pop()
        a = _walk(a, subst)
        b = _walk(b, subst)
        if a == b:
            continue
        if isinstance(a, Var):
            if occurs_check and occurs_in(a, b, subst):
                return False
            _bind(a, b, subst)
            continue
        if isinstance(b, Var):
            if occurs_check and occurs_in(b, a, subst):
                return False
            _bind(b, a, subst)
            continue
        if isinstance(a, Atom) or isinstance(b, Atom):
            return False  # distinct constants, or constant vs compound
        if a.functor != b.functor or a.arity != b.arity:
            return False
        stack.extend(zip(a.args, b.args))
    return True


def _walk(term, subst):
    """Dereference a variable to its binding's root."""
    while isinstance(term, Var) and term in subst:
        term = subst[term]
    return term


def _bind(var, term, subst):
    """Record var -> term and re-normalize to keep idempotence."""
    # Fully instantiate the value first (walk only dereferenced the
    # root; inner variables may already be bound).
    term = apply_subst(term, subst)
    subst[var] = term
    # Substitute the new binding into existing ones so that every value
    # is fully dereferenced (idempotent substitution invariant).
    single = {var: term}
    for existing in list(subst):
        if existing != var:
            subst[existing] = apply_subst(subst[existing], single)


_rename_counter = itertools.count(1)


def rename_apart(clause, suffix=None):
    """Return a variant of *clause* with globally fresh variable names.

    Fresh variables are named ``<old>#<n>`` — the ``#`` cannot appear in
    parsed variable names, so collisions with source variables are
    impossible.
    """
    if suffix is None:
        suffix = next(_rename_counter)
    renaming = {
        var: Var("%s#%s" % (var.name.split("#")[0], suffix))
        for var in clause.variables()
    }
    return apply_subst_clause(clause, renaming)


def canonicalize_clause_variables(clause):
    """Rename a clause's variables to clean, parseable names.

    Fresh variables produced by :func:`rename_apart` look like
    ``X#61``; this maps each variable (in first-occurrence order) back
    to its base name, disambiguating collisions with numeric suffixes —
    so transformed programs round-trip through the parser.
    """
    taken = set()
    renaming = {}
    for var in clause.variables():
        base = var.name.split("#")[0] or "V"
        candidate = base
        ordinal = 1
        while candidate in taken:
            ordinal += 1
            candidate = "%s%d" % (base, ordinal)
        taken.add(candidate)
        if candidate != var.name:
            renaming[var] = Var(candidate)
    if not renaming:
        return clause
    return apply_subst_clause(clause, renaming)


def rename_term_apart(term, suffix=None):
    """Variant of a bare term with fresh variable names."""
    from repro.lp.terms import term_variables

    if suffix is None:
        suffix = next(_rename_counter)
    renaming = {
        var: Var("%s#%s" % (var.name.split("#")[0], suffix))
        for var in term_variables(term)
    }
    return apply_subst(term, renaming)
