"""Mode declarations: ``:- mode(append(b, b, f)).``

Deductive-database systems need to know which query patterns a
procedure supports; the paper's capture-rule story assumes exactly
this.  A program may carry mode directives::

    :- mode(append(b, b, f)).
    :- mode(append(f, f, b)).
    :- mode(perm(b, f)).

Each declares one bound/free pattern under which the predicate is
meant to be invoked.  :class:`~repro.lp.program.Program` collects them
as :class:`ModeDeclaration` values; the CLI's ``--all-modes`` and the
lint example analyze every declared mode.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import PrologSyntaxError
from repro.lp.terms import Atom, Struct


@dataclass(frozen=True)
class ModeDeclaration:
    """One declared query pattern for a predicate."""

    indicator: tuple       # (name, arity)
    mode: str              # e.g. "bbf"

    def __str__(self):
        return ":- mode(%s(%s))." % (
            self.indicator[0],
            ", ".join(self.mode),
        )


def parse_mode_directive(term):
    """Parse the argument of a ``:- mode(...)`` directive.

    *term* is the directive body, e.g. ``mode(append(b, b, f))``.
    Returns a :class:`ModeDeclaration` or None when the directive is
    not a mode declaration (callers may ignore other directives).
    """
    if not (
        isinstance(term, Struct)
        and term.functor == "mode"
        and term.arity == 1
    ):
        return None
    pattern = term.args[0]
    if isinstance(pattern, Atom):
        return ModeDeclaration(indicator=(pattern.name, 0), mode="")
    if not isinstance(pattern, Struct):
        raise PrologSyntaxError(
            "mode directive needs a predicate pattern: %s" % term
        )
    letters = []
    for argument in pattern.args:
        if argument == Atom("b"):
            letters.append("b")
        elif argument == Atom("f"):
            letters.append("f")
        elif argument in (Atom("+"), Atom("++")):
            letters.append("b")  # common Mercury/SWI spelling
        elif argument in (Atom("-"), Atom("?")):
            letters.append("f")
        else:
            raise PrologSyntaxError(
                "mode argument must be b/f (or +/-), got %s in %s"
                % (argument, term)
            )
    return ModeDeclaration(
        indicator=(pattern.functor, pattern.arity),
        mode="".join(letters),
    )
