"""Clause and program model.

A :class:`Program` is an ordered collection of :class:`Clause` objects,
indexed by predicate ``name/arity``.  Bodies are flat sequences of
:class:`Literal` (an atom plus a polarity — negative literals come from
``\\+ Goal``).

Builtin comparison predicates (``=<``, ``<``, ...) are modelled as
always-lowest EDB predicates: they never appear in rule heads, impose no
size constraints by themselves, and the SLD engine evaluates them over
integer constants.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import AnalysisError, PrologSyntaxError
from repro.lp.terms import Atom, Struct, Term, Var, terms_variables

#: Builtins the engine evaluates directly and the analyzer treats as EDB.
BUILTIN_PREDICATES = {
    ("=<", 2),
    ("<", 2),
    (">", 2),
    (">=", 2),
    ("==", 2),
    ("\\==", 2),
    ("=", 2),
    ("\\=", 2),
    ("is", 2),
    ("true", 0),
    ("fail", 0),
    ("!", 0),
}


@dataclass(frozen=True)
class Literal:
    """A body literal: an atom with a polarity.

    ``positive`` is False exactly for negated subgoals ``\\+ atom``.
    """

    atom: Term
    positive: bool = True

    def __post_init__(self):
        if not isinstance(self.atom, (Atom, Struct)):
            raise AnalysisError(
                "literal must be an atom or compound, got %r" % (self.atom,)
            )

    @property
    def indicator(self):
        """The ``(name, arity)`` pair of the literal's predicate."""
        if isinstance(self.atom, Struct):
            return (self.atom.functor, self.atom.arity)
        return (self.atom.name, 0)

    @property
    def args(self):
        """The literal's argument terms."""
        if isinstance(self.atom, Struct):
            return self.atom.args
        return ()

    def negate(self):
        """The same literal with flipped polarity."""
        return Literal(self.atom, positive=not self.positive)

    def __str__(self):
        text = str(self.atom)
        return text if self.positive else "\\+ %s" % text


@dataclass(frozen=True)
class Clause:
    """One rule ``head :- body`` (facts have an empty body)."""

    head: Term
    body: tuple = ()

    def __post_init__(self):
        if not isinstance(self.head, (Atom, Struct)):
            raise AnalysisError("clause head must be an atom: %r" % (self.head,))
        if isinstance(self.head, Struct) and any(
            not isinstance(lit, Literal) for lit in self.body
        ):
            raise AnalysisError("clause body must contain Literals")

    @property
    def indicator(self):
        """The (name, arity) predicate indicator."""
        if isinstance(self.head, Struct):
            return (self.head.functor, self.head.arity)
        return (self.head.name, 0)

    @property
    def head_args(self):
        """The head's argument terms."""
        if isinstance(self.head, Struct):
            return self.head.args
        return ()

    def is_fact(self):
        """True when the body is empty."""
        return not self.body

    def variables(self):
        """Distinct variables of the whole clause, head first."""
        terms = [self.head] + [lit.atom for lit in self.body]
        return terms_variables(terms)

    def __str__(self):
        if self.is_fact():
            return "%s." % self.head
        return "%s :- %s." % (
            self.head,
            ", ".join(str(lit) for lit in self.body),
        )


@dataclass
class Predicate:
    """All clauses for one ``name/arity``, in source order."""

    name: str
    arity: int
    clauses: list = field(default_factory=list)

    @property
    def indicator(self):
        """The (name, arity) predicate indicator."""
        return (self.name, self.arity)

    def __str__(self):
        return "%s/%d" % (self.name, self.arity)


class Program:
    """An ordered logic program with predicate indexing.

    Construction from parsed clause terms understands ``:-/2`` rules,
    ``,/2`` conjunction bodies, and ``\\+/1`` negation.
    """

    def __init__(self, clauses=()):
        self._clauses = []
        self._predicates = {}
        self._mode_declarations = []
        for clause in clauses:
            self.add_clause(clause)

    # -- construction -----------------------------------------------------

    @classmethod
    def from_clause_terms(cls, terms):
        """Build a Program from parsed clause terms."""
        from repro.lp.modes import parse_mode_directive

        program = cls()
        for term in terms:
            if (
                isinstance(term, Struct)
                and term.functor == ":-"
                and term.arity == 1
            ):
                declaration = parse_mode_directive(term.args[0])
                if declaration is None:
                    raise PrologSyntaxError(
                        "unsupported directive: %s" % term
                    )
                program.add_mode_declaration(declaration)
                continue
            program.add_clause(clause_from_term(term))
        return program

    @classmethod
    def from_text(cls, text):
        """Parse Prolog text into a Program."""
        from repro.lp.parser import parse_clause_terms

        return cls.from_clause_terms(parse_clause_terms(text))

    def add_clause(self, clause):
        """Append a clause and index it by predicate."""
        if clause.indicator in BUILTIN_PREDICATES:
            raise AnalysisError(
                "cannot define builtin predicate %s/%d" % clause.indicator
            )
        self._clauses.append(clause)
        predicate = self._predicates.get(clause.indicator)
        if predicate is None:
            predicate = Predicate(*clause.indicator)
            self._predicates[clause.indicator] = predicate
        predicate.clauses.append(clause)

    def add_mode_declaration(self, declaration):
        """Record one ':- mode(...)' declaration."""
        self._mode_declarations.append(declaration)

    # -- access -----------------------------------------------------------

    @property
    def mode_declarations(self):
        """Declared ``:- mode(...)`` query patterns, in source order."""
        return tuple(self._mode_declarations)

    @property
    def clauses(self):
        """Every clause, in source order."""
        return tuple(self._clauses)

    @property
    def predicates(self):
        """Predicates in first-definition order."""
        return tuple(self._predicates.values())

    def predicate(self, name, arity):
        """The Predicate record for name/arity, or None."""
        return self._predicates.get((name, arity))

    def clauses_for(self, indicator):
        """The clauses of one predicate indicator, in order."""
        predicate = self._predicates.get(indicator)
        return tuple(predicate.clauses) if predicate else ()

    def defined_indicators(self):
        """Indicators that have at least one clause."""
        return set(self._predicates)

    def edb_indicators(self):
        """Indicators referenced in bodies but never defined (plus builtins
        are excluded — they are not 'relations' for analysis purposes)."""
        referenced = set()
        for clause in self._clauses:
            for literal in clause.body:
                referenced.add(literal.indicator)
        return {
            ind
            for ind in referenced
            if ind not in self._predicates and ind not in BUILTIN_PREDICATES
        }

    def __len__(self):
        return len(self._clauses)

    def __str__(self):
        return "\n".join(str(clause) for clause in self._clauses)

    # -- dependency structure ----------------------------------------------

    def dependency_edges(self):
        """Yield (head_indicator, subgoal_indicator) arcs p -> q.

        Follows Section 2.3: an arc for every rule of p with a subgoal q.
        Builtins are skipped — they cannot participate in recursion.
        """
        for clause in self._clauses:
            for literal in clause.body:
                if literal.indicator in BUILTIN_PREDICATES:
                    continue
                yield (clause.indicator, literal.indicator)

    def dependency_graph(self):
        """The predicate dependency digraph (Section 2.3)."""
        from repro.graph.digraph import Digraph

        graph = Digraph()
        for indicator in self._predicates:
            graph.add_node(indicator)
        for source, target in self.dependency_edges():
            graph.add_node(target)
            graph.add_edge(source, target)
        return graph

    def sccs(self):
        """Strongly connected components in bottom-up (reverse topological)
        order — lower SCCs first, as the analyzer consumes them."""
        from repro.graph.scc import strongly_connected_components

        graph = self.dependency_graph()
        return strongly_connected_components(graph)


def clause_from_term(term):
    """Convert a parsed ``:-/2`` (or fact) term into a :class:`Clause`."""
    if isinstance(term, Struct) and term.functor == ":-" and term.arity == 2:
        head, body_term = term.args
        return Clause(head=head, body=tuple(body_literals(body_term)))
    if isinstance(term, Struct) and term.functor == ":-" and term.arity == 1:
        raise PrologSyntaxError("directives are not supported: %s" % term)
    if isinstance(term, (Atom, Struct)):
        return Clause(head=term)
    raise PrologSyntaxError("clause must be an atom or rule: %r" % (term,))


def body_literals(term):
    """Flatten a ``,/2`` conjunction into literals, handling ``\\+``."""
    if isinstance(term, Struct) and term.functor == "," and term.arity == 2:
        yield from body_literals(term.args[0])
        yield from body_literals(term.args[1])
        return
    if isinstance(term, Struct) and term.functor in (";", "->") and term.arity == 2:
        raise PrologSyntaxError(
            "disjunction/if-then-else is not supported; split %r into "
            "separate clauses" % str(term)
        )
    if isinstance(term, Struct) and term.functor == "\\+" and term.arity == 1:
        inner = term.args[0]
        if isinstance(inner, Var):
            raise PrologSyntaxError("\\+ applied to a variable: %s" % term)
        yield Literal(inner, positive=False)
        return
    if isinstance(term, Var):
        raise PrologSyntaxError("unbound variable used as a goal: %s" % term)
    yield Literal(term)
