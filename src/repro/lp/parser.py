"""Operator-precedence parser for the Prolog subset.

Implements a Pratt-style reader over the token stream with the standard
Prolog operator table (restricted to operators the corpus and the
paper's examples need).  Produces :class:`~repro.lp.terms.Term` trees;
clause and program assembly happens in :mod:`repro.lp.program`.

Supported syntax::

    perm(P, [X|L]) :- append(E, [X|F], P), append(E, F, P1), perm(P1, L).
    merge([X|Xs], [Y|Ys], [X|Zs]) :- X =< Y, merge([Y|Ys], Xs, Zs).
    q(Y) :- \\+ p(Y).

Lists desugar to the binary cons functor ``'.'`` with the atom ``[]``
as terminator, exactly the representation the paper's size equations
assume (``[X|L]`` has size ``2 + X + L``).
"""

from __future__ import annotations

from repro.errors import PrologSyntaxError
from repro.lp.terms import Atom, Struct, Term, Var, make_list
from repro.lp.tokenizer import (
    ATOM,
    END,
    EOF,
    INTEGER,
    PUNCT,
    Tokenizer,
    VARIABLE,
)

# Operator table: name -> (precedence, type).  Types follow ISO Prolog:
# xfx/xfy/yfx are infix, fy/fx prefix.  An argument of type ``x`` must
# have strictly smaller precedence; ``y`` allows equal precedence.
INFIX_OPERATORS = {
    ":-": (1200, "xfx"),
    "-->": (1200, "xfx"),
    ";": (1100, "xfy"),
    "->": (1050, "xfy"),
    ",": (1000, "xfy"),
    "=": (700, "xfx"),
    "\\=": (700, "xfx"),
    "==": (700, "xfx"),
    "\\==": (700, "xfx"),
    "=..": (700, "xfx"),
    "is": (700, "xfx"),
    "<": (700, "xfx"),
    ">": (700, "xfx"),
    "=<": (700, "xfx"),
    ">=": (700, "xfx"),
    "+": (500, "yfx"),
    "-": (500, "yfx"),
    "*": (400, "yfx"),
    "/": (400, "yfx"),
    "//": (400, "yfx"),
    "mod": (400, "yfx"),
    "^": (200, "xfy"),
}

PREFIX_OPERATORS = {
    ":-": (1200, "fx"),
    "?-": (1200, "fx"),
    "\\+": (900, "fy"),
    "-": (200, "fy"),
    "+": (200, "fy"),
}

#: Maximum operator precedence; a whole clause is read at this level.
MAX_PRECEDENCE = 1200

#: Precedence of a bare term (atoms, functional notation, parenthesized).
PRIMARY_PRECEDENCE = 0


class _Parser:
    """Recursive-descent / Pratt parser over a token list."""

    def __init__(self, text):
        self._tokens = list(Tokenizer(text).tokens())
        self._index = 0

    # -- token utilities -------------------------------------------------

    def _peek(self):
        return self._tokens[self._index]

    def _next(self):
        token = self._tokens[self._index]
        if token.kind != EOF:
            self._index += 1
        return token

    def _error(self, message, token=None):
        token = token or self._peek()
        raise PrologSyntaxError(
            "%s (found %s)" % (message, token),
            line=token.line,
            column=token.column,
        )

    def _expect_punct(self, text):
        token = self._next()
        if token.kind != PUNCT or token.text != text:
            self._error("expected %r" % text, token)
        return token

    def at_eof(self):
        """True when every token has been consumed."""
        return self._peek().kind == EOF

    # -- term reading -----------------------------------------------------

    def read_clause_term(self):
        """Read one term followed by a clause-terminating period."""
        term = self.parse(MAX_PRECEDENCE)
        token = self._next()
        if token.kind != END:
            self._error("expected '.' at end of clause", token)
        return term

    def parse(self, max_precedence):
        """Read a term whose principal operator precedence is allowed."""
        left, left_precedence = self._parse_primary(max_precedence)
        return self._parse_infix(left, left_precedence, max_precedence)

    def _parse_infix(self, left, left_precedence, max_precedence):
        while True:
            token = self._peek()
            name = None
            if token.kind == ATOM and token.text in INFIX_OPERATORS:
                name = token.text
            elif (
                token.kind == PUNCT
                and token.text == ","
                and max_precedence >= 1000
            ):
                name = ","
            if name is None:
                return left
            precedence, op_type = INFIX_OPERATORS[name]
            if precedence > max_precedence:
                return left
            left_max = precedence if op_type == "yfx" else precedence - 1
            if left_precedence > left_max:
                return left
            self._next()
            right_max = precedence if op_type == "xfy" else precedence - 1
            right = self.parse(right_max)
            left = Struct(name, (left, right))
            left_precedence = precedence

    def _parse_primary(self, max_precedence):
        """Read a primary term; return (term, its precedence)."""
        token = self._next()

        if token.kind == INTEGER:
            return Atom(int(token.text)), PRIMARY_PRECEDENCE

        if token.kind == VARIABLE:
            return self._make_variable(token), PRIMARY_PRECEDENCE

        if token.kind == PUNCT:
            if token.text == "(":
                term = self.parse(MAX_PRECEDENCE)
                self._expect_punct(")")
                return term, PRIMARY_PRECEDENCE
            if token.text == "[":
                return self._parse_list(), PRIMARY_PRECEDENCE
            if token.text == "!":
                return Atom("!"), PRIMARY_PRECEDENCE
            self._error("unexpected token", token)

        if token.kind == ATOM:
            return self._parse_atom_or_call(token, max_precedence)

        self._error("unexpected token", token)

    _anonymous_counter = 0

    def _make_variable(self, token):
        if token.text == "_":
            # Each bare underscore is a fresh variable.
            _Parser._anonymous_counter += 1
            return Var("_G%d" % _Parser._anonymous_counter)
        return Var(token.text)

    def _parse_atom_or_call(self, token, max_precedence):
        name = token.text
        following = self._peek()

        # Functional notation binds tightest:  name( arg, ... )
        # Only when the "(" immediately follows (no layout) per ISO; we
        # accept any "(" here as the corpus never relies on the nuance.
        if following.kind == PUNCT and following.text == "(":
            self._next()
            args = self._parse_arguments()
            return Struct(name, tuple(args)), PRIMARY_PRECEDENCE

        # Prefix operator (unless something that can't start a term follows).
        if name in PREFIX_OPERATORS and self._starts_term(following):
            precedence, op_type = PREFIX_OPERATORS[name]
            if precedence <= max_precedence:
                arg_max = precedence if op_type == "fy" else precedence - 1
                # Special case: negative integer literal.
                if name == "-" and following.kind == INTEGER:
                    value = self._next()
                    return Atom(-int(value.text)), PRIMARY_PRECEDENCE
                argument = self.parse(arg_max)
                return Struct(name, (argument,)), precedence

        return Atom(name), PRIMARY_PRECEDENCE

    def _starts_term(self, token):
        if token.kind in (INTEGER, VARIABLE):
            return True
        if token.kind == ATOM:
            # An infix operator cannot start a term (except ones that are
            # also prefix; keep it simple: any atom may start a term).
            return True
        if token.kind == PUNCT and token.text in ("(", "["):
            return True
        return False

    def _parse_arguments(self):
        """Read ``arg, arg, ... )`` — each arg below the ',' precedence."""
        args = [self.parse(999)]
        while True:
            token = self._next()
            if token.kind == PUNCT and token.text == ")":
                return args
            if token.kind == PUNCT and token.text == ",":
                args.append(self.parse(999))
                continue
            self._error("expected ',' or ')' in argument list", token)

    def _parse_list(self):
        """Read ``[ ... ]`` list syntax, desugaring to cons cells."""
        token = self._peek()
        if token.kind == PUNCT and token.text == "]":
            self._next()
            return Atom("[]")
        elements = [self.parse(999)]
        while True:
            token = self._next()
            if token.kind == PUNCT and token.text == "]":
                return make_list(elements)
            if token.kind == PUNCT and token.text == ",":
                elements.append(self.parse(999))
                continue
            if token.kind == PUNCT and token.text == "|":
                tail = self.parse(999)
                self._expect_punct("]")
                return make_list(elements, tail=tail)
            self._error("expected ',', '|' or ']' in list", token)


def parse_term(text):
    """Parse a single term (no trailing period required)."""
    parser = _Parser(text)
    term = parser.parse(MAX_PRECEDENCE)
    token = parser._peek()
    if token.kind == END:
        parser._next()
        token = parser._peek()
    if token.kind != EOF:
        parser._error("trailing input after term")
    return term


def parse_clause_terms(text):
    """Parse period-terminated clause terms from *text*."""
    parser = _Parser(text)
    terms = []
    while not parser.at_eof():
        terms.append(parser.read_clause_term())
    return terms


def parse_query(text):
    """Parse a query body (a goal conjunction) into a list of terms.

    Accepts ``p(X), q(X)`` with or without a trailing period.
    """
    term = parse_term(text)
    return _flatten_conjunction(term)


def _flatten_conjunction(term):
    if isinstance(term, Struct) and term.functor == "," and term.arity == 2:
        return _flatten_conjunction(term.args[0]) + _flatten_conjunction(
            term.args[1]
        )
    return [term]


def parse_program(text):
    """Parse Prolog source text into a :class:`repro.lp.program.Program`."""
    from repro.lp.program import Program

    return Program.from_clause_terms(parse_clause_terms(text))
