"""Tokenizer for the Prolog subset the analyzer reads.

Recognizes:

- unquoted atoms (``append``), quoted atoms (``'+'``), symbolic atoms
  (``=<``, ``:-``, ...),
- variables (``Xs``, ``_Tail``, ``_``),
- integers,
- punctuation ``( ) [ ] , |`` and the clause-terminating period,
- ``%`` line comments and ``/* ... */`` block comments.

A period is a clause terminator when followed by whitespace, a comment,
or end of input; otherwise it is a symbolic atom character (so ``a.b``
tokenizes with an infix ``.`` should the grammar want it).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import PrologSyntaxError

#: Characters that may form symbolic atoms, per ISO Prolog.
SYMBOL_CHARS = set("+-*/\\^<>=~:.?@#&$")

#: Token kinds.
ATOM = "atom"
VARIABLE = "variable"
INTEGER = "integer"
PUNCT = "punct"
END = "end"          # clause-terminating period
EOF = "eof"


@dataclass(frozen=True)
class Token:
    """A single lexical token with its source position (1-based)."""

    kind: str
    text: str
    line: int
    column: int

    def __str__(self):
        if self.kind == EOF:
            return "<end of input>"
        return repr(self.text)


class Tokenizer:
    """Streaming tokenizer over Prolog source text."""

    def __init__(self, text):
        self._text = text
        self._pos = 0
        self._line = 1
        self._column = 1

    def _error(self, message):
        raise PrologSyntaxError(message, line=self._line, column=self._column)

    def _peek(self, offset=0):
        index = self._pos + offset
        if index < len(self._text):
            return self._text[index]
        return ""

    def _advance(self, count=1):
        for _ in range(count):
            if self._pos >= len(self._text):
                return
            if self._text[self._pos] == "\n":
                self._line += 1
                self._column = 1
            else:
                self._column += 1
            self._pos += 1

    def _skip_layout(self):
        """Skip whitespace and comments; error on unterminated block."""
        while True:
            char = self._peek()
            if char and char.isspace():
                self._advance()
            elif char == "%":
                while self._peek() and self._peek() != "\n":
                    self._advance()
            elif char == "/" and self._peek(1) == "*":
                self._advance(2)
                while not (self._peek() == "*" and self._peek(1) == "/"):
                    if not self._peek():
                        self._error("unterminated block comment")
                    self._advance()
                self._advance(2)
            else:
                return

    def tokens(self):
        """Yield every token, ending with a single EOF token."""
        while True:
            token = self.next_token()
            yield token
            if token.kind == EOF:
                return

    def next_token(self):
        """Scan and return the next token (EOF token at end)."""
        self._skip_layout()
        line, column = self._line, self._column
        char = self._peek()

        if not char:
            return Token(EOF, "", line, column)

        if char.isdigit():
            return self._read_integer(line, column)

        if char == "_" or char.isalpha():
            return self._read_name(line, column)

        if char == "'":
            return self._read_quoted_atom(line, column)

        if char in "()[],|!":
            self._advance()
            return Token(PUNCT, char, line, column)

        if char in SYMBOL_CHARS:
            return self._read_symbolic(line, column)

        self._error("unexpected character %r" % char)

    def _read_integer(self, line, column):
        start = self._pos
        while self._peek().isdigit():
            self._advance()
        return Token(INTEGER, self._text[start:self._pos], line, column)

    def _read_name(self, line, column):
        start = self._pos
        while self._peek() == "_" or self._peek().isalnum():
            self._advance()
        text = self._text[start:self._pos]
        if text[0] == "_" or text[0].isupper():
            return Token(VARIABLE, text, line, column)
        return Token(ATOM, text, line, column)

    def _read_quoted_atom(self, line, column):
        self._advance()  # opening quote
        chars = []
        while True:
            char = self._peek()
            if not char:
                self._error("unterminated quoted atom")
            if char == "'":
                if self._peek(1) == "'":  # escaped quote
                    chars.append("'")
                    self._advance(2)
                    continue
                self._advance()
                return Token(ATOM, "".join(chars), line, column)
            if char == "\\":
                self._advance()
                chars.append(self._read_escape())
                continue
            chars.append(char)
            self._advance()

    def _read_escape(self):
        mapping = {"n": "\n", "t": "\t", "\\": "\\", "'": "'"}
        char = self._peek()
        if char in mapping:
            self._advance()
            return mapping[char]
        self._error("unsupported escape \\%s" % char)

    def _read_symbolic(self, line, column):
        # A period terminates the clause when followed by layout or EOF.
        if self._peek() == ".":
            follower = self._peek(1)
            if not follower or follower.isspace() or follower == "%":
                self._advance()
                return Token(END, ".", line, column)
        # Maximal munch: a symbolic run consumes every symbol char.
        # The clause-terminating period is only recognized when a "."
        # *begins* a token (checked above), matching ISO behaviour —
        # so "=.." lexes as the single univ operator.
        start = self._pos
        while self._peek() in SYMBOL_CHARS:
            self._advance()
        return Token(ATOM, self._text[start:self._pos], line, column)


def tokenize(text):
    """Return the full token list (EOF token included) for *text*."""
    return list(Tokenizer(text).tokens())
