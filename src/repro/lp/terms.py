"""Logical terms: variables, constants, and compound terms.

A *term* is a logical variable, a constant (atom or integer), or a
function symbol applied to argument terms (Section 2.1 of the paper).
Terms are immutable and hashable so they can be used as dictionary keys
in substitutions and memo tables.

The paper's *structural term size* of a ground term is the number of
edges in its tree — equivalently, the sum of the arities of its function
symbols (Section 2.2).  The symbolic version over non-ground terms lives
in :mod:`repro.sizes.norms`; here we provide the ground-term measure and
generic traversal utilities.
"""

from __future__ import annotations


class Term:
    """Abstract base class for logical terms.

    Concrete subclasses are :class:`Var`, :class:`Atom`, and
    :class:`Struct`.  All are immutable value objects.
    """

    __slots__ = ()

    def is_ground(self):
        """Return True if the term contains no variables."""
        return not any(True for _ in self.variables())

    def variables(self):
        """Yield each variable occurrence (with repetition) in order."""
        raise NotImplementedError

    def structural_size(self):
        """Number of edges in the term tree; requires a ground term."""
        raise NotImplementedError

    def subterms(self):
        """Yield this term and every subterm, pre-order."""
        raise NotImplementedError

    def functors(self):
        """Yield (name, arity) for every function symbol occurrence."""
        raise NotImplementedError


class Var(Term):
    """A logical variable, identified by name.

    Within one clause, equal names denote the same variable.  Renaming
    apart (for resolution) is done by :func:`repro.lp.unify.rename_apart`.
    """

    __slots__ = ("name",)

    def __init__(self, name):
        if not name:
            raise ValueError("variable name must be non-empty")
        object.__setattr__(self, "name", str(name))

    def __setattr__(self, key, value):
        raise AttributeError("Var is immutable")

    def __eq__(self, other):
        return isinstance(other, Var) and self.name == other.name

    def __hash__(self):
        return hash(("Var", self.name))

    def __repr__(self):
        return "Var(%r)" % self.name

    def __str__(self):
        return self.name

    def variables(self):
        """The variables occurring in this object."""
        yield self

    def structural_size(self):
        """Number of edges in the term tree (ground terms)."""
        raise ValueError("structural_size of non-ground term %s" % self)

    def subterms(self):
        """Yield this term and every subterm, pre-order."""
        yield self

    def functors(self):
        """Yield (name, arity) for every function symbol occurrence."""
        return iter(())


class Atom(Term):
    """A constant: a Prolog atom or an integer.

    Constants are functions of zero arity, so their structural size is 0.
    The empty list ``[]`` is the atom named ``"[]"``.
    """

    __slots__ = ("name",)

    def __init__(self, name):
        object.__setattr__(self, "name", name)

    def __setattr__(self, key, value):
        raise AttributeError("Atom is immutable")

    def __eq__(self, other):
        return isinstance(other, Atom) and self.name == other.name

    def __hash__(self):
        return hash(("Atom", self.name))

    def __repr__(self):
        return "Atom(%r)" % (self.name,)

    def __str__(self):
        return str(self.name)

    def variables(self):
        """The variables occurring in this object."""
        return iter(())

    def structural_size(self):
        """Number of edges in the term tree (ground terms)."""
        return 0

    def subterms(self):
        """Yield this term and every subterm, pre-order."""
        yield self

    def functors(self):
        """Yield (name, arity) for every function symbol occurrence."""
        yield (self.name, 0)


#: The empty-list constant, written ``[]`` in Prolog syntax.
NIL = Atom("[]")

#: The list constructor functor name.  ``'.'(H, T)`` is written ``H . T``
#: in the paper (read "cons") and ``[H|T]`` in Prolog.
CONS = "."


class Struct(Term):
    """A compound term: an uninterpreted function symbol with arguments.

    ``Struct(".", (h, t))`` is the list cell the paper writes ``h . t``.
    """

    __slots__ = ("functor", "args")

    def __init__(self, functor, args):
        args = tuple(args)
        if not functor:
            raise ValueError("functor must be non-empty")
        if not args:
            raise ValueError(
                "Struct must have at least one argument; use Atom for %r"
                % functor
            )
        if not all(isinstance(arg, Term) for arg in args):
            raise TypeError("Struct arguments must be Terms: %r" % (args,))
        object.__setattr__(self, "functor", str(functor))
        object.__setattr__(self, "args", args)

    def __setattr__(self, key, value):
        raise AttributeError("Struct is immutable")

    @property
    def arity(self):
        """The number of arguments."""
        return len(self.args)

    def __eq__(self, other):
        return (
            isinstance(other, Struct)
            and self.functor == other.functor
            and self.args == other.args
        )

    def __hash__(self):
        return hash(("Struct", self.functor, self.args))

    def __repr__(self):
        return "Struct(%r, %r)" % (self.functor, self.args)

    def __str__(self):
        if self.functor == CONS and self.arity == 2:
            return _format_list(self)
        return "%s(%s)" % (self.functor, ", ".join(str(a) for a in self.args))

    def variables(self):
        """The variables occurring in this object."""
        for arg in self.args:
            yield from arg.variables()

    def structural_size(self):
        """Number of edges in the term tree (ground terms)."""
        return self.arity + sum(arg.structural_size() for arg in self.args)

    def subterms(self):
        """Yield this term and every subterm, pre-order."""
        yield self
        for arg in self.args:
            yield from arg.subterms()

    def functors(self):
        """Yield (name, arity) for every function symbol occurrence."""
        yield (self.functor, self.arity)
        for arg in self.args:
            yield from arg.functors()


def _format_list(term):
    """Render a cons chain using Prolog list notation ``[a, b | T]``."""
    elements = []
    node = term
    while isinstance(node, Struct) and node.functor == CONS and node.arity == 2:
        elements.append(str(node.args[0]))
        node = node.args[1]
    if node == NIL:
        return "[%s]" % ", ".join(elements)
    return "[%s|%s]" % (", ".join(elements), node)


def cons(head, tail):
    """Build the list cell ``head . tail`` (paper notation) / ``[H|T]``."""
    return Struct(CONS, (head, tail))


def make_list(elements, tail=NIL):
    """Build a proper (or partial, given *tail*) list from *elements*."""
    result = tail
    for element in reversed(list(elements)):
        result = cons(element, result)
    return result


def list_elements(term):
    """Return (elements, tail) of a cons chain.

    For a proper list the tail is :data:`NIL`.  A non-list term yields
    ``([], term)``.
    """
    elements = []
    node = term
    while isinstance(node, Struct) and node.functor == CONS and node.arity == 2:
        elements.append(node.args[0])
        node = node.args[1]
    return elements, node


def term_variables(term):
    """Return the distinct variables of *term* in first-occurrence order."""
    seen = []
    seen_set = set()
    for var in term.variables():
        if var not in seen_set:
            seen_set.add(var)
            seen.append(var)
    return seen


def terms_variables(terms):
    """Distinct variables across an iterable of terms, in order."""
    seen = []
    seen_set = set()
    for term in terms:
        for var in term.variables():
            if var not in seen_set:
                seen_set.add(var)
                seen.append(var)
    return seen


def integer(value):
    """Represent a Python int as a constant term.

    Integers are uninterpreted constants for size analysis (arity 0,
    structural size 0), matching the paper's treatment of constants.
    """
    return Atom(int(value))


def is_integer_atom(term):
    """True if *term* is a constant carrying a Python int."""
    return isinstance(term, Atom) and isinstance(term.name, int)


def walk(term, fn):
    """Rebuild *term* bottom-up, applying *fn* to every node.

    *fn* receives a term whose arguments have already been rewritten and
    returns the replacement node.  Useful for substitutions and renamings
    implemented outside :mod:`repro.lp.unify`.
    """
    if isinstance(term, Struct):
        new_args = tuple(walk(arg, fn) for arg in term.args)
        return fn(Struct(term.functor, new_args))
    return fn(term)
