"""Random ground-term and query generators.

Used by the empirical-validation benchmark (experiment F2) and by tests
that need a stream of well-moded queries: the bound arguments of a query
are filled with random *ground* terms, the free ones with fresh
variables.
"""

from __future__ import annotations

import random

from repro.lp.terms import Atom, Struct, Var, make_list

#: Constant pool used for list elements and leaves.
DEFAULT_CONSTANTS = tuple(Atom(name) for name in "abcdefgh")


class TermGenerator:
    """Deterministic (seeded) generator of ground terms and queries."""

    def __init__(self, seed=0, constants=DEFAULT_CONSTANTS):
        self._random = random.Random(seed)
        self._constants = tuple(constants)
        self._fresh = 0

    def constant(self):
        """An expression with only a constant term."""
        return self._random.choice(self._constants)

    def integer(self, low=0, high=20):
        """A random integer constant in [low, high]."""
        return Atom(self._random.randint(low, high))

    def ground_list(self, max_length=6, element=None):
        """A proper list of random constants (or *element()* results)."""
        length = self._random.randint(0, max_length)
        make_element = element or self.constant
        return make_list(make_element() for _ in range(length))

    def sorted_integer_list(self, max_length=6, low=0, high=20):
        """An ascending integer list — valid input for ``merge``-style
        procedures whose guards compare elements."""
        length = self._random.randint(0, max_length)
        values = sorted(
            self._random.randint(low, high) for _ in range(length)
        )
        return make_list(Atom(v) for v in values)

    def ground_tree(self, functor="f", max_depth=4):
        """A random binary tree over *functor* with constant leaves."""
        if max_depth <= 0 or self._random.random() < 0.3:
            return self.constant()
        return Struct(
            functor,
            (
                self.ground_tree(functor, max_depth - 1),
                self.ground_tree(functor, max_depth - 1),
            ),
        )

    def fresh_var(self):
        """A fresh query variable."""
        self._fresh += 1
        return Var("Q%d" % self._fresh)

    def query_atom(self, name, modes, bound_maker=None):
        """Build a query atom for predicate *name* from a mode string.

        *modes* is a string over ``{'b', 'f'}``: each ``b`` position gets
        a random ground term (from *bound_maker* or :meth:`ground_list`),
        each ``f`` position a fresh variable.
        """
        make_bound = bound_maker or self.ground_list
        args = tuple(
            make_bound() if mode == "b" else self.fresh_var()
            for mode in modes
        )
        if not args:
            return Atom(name)
        return Struct(name, args)
