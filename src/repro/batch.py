"""Batch and parallel analysis: many program×mode pairs at once.

The corpus drivers, the ``--all-modes`` CLI sweep, and the scaling
benchmarks all share the same shape of work: a list of independent
(program, root, mode) analyses whose results are folded into one
verdict table and one merged :class:`~repro.core.AnalysisTrace`.
:func:`analyze_many` is that loop, with an optional process pool:

- **items** carry program *source text*, not parsed objects —
  :class:`~repro.linalg.linexpr.LinearExpr` (and everything built from
  it) is immutable via a raising ``__setattr__`` and does not pickle,
  so workers parse their own copy and ship back only slim, picklable
  :class:`BatchResult` records plus their stage traces;
- **chunking** groups items by source text, so one worker analyzes
  every mode of a program with a single
  :class:`~repro.methods.MethodRunner` — reusing the inferred
  inter-argument environment and the dualization cache exactly like
  the serial sweep does (large groups are split when there are fewer
  programs than workers); ``settings.method`` picks the registered
  termination prover (``argsize`` by default);
- ``jobs=1`` runs in-process with no executor and no pickling — the
  reference path the parallel results are tested against.

Worker processes have their *own* memoization caches, so merged
``cache_hits``/``cache_misses`` differ from a serial run; the
structural counters (calls, rows, pivots, eliminations) and the
verdicts are identical, which ``tests/core/test_batch.py`` enforces.
"""

from __future__ import annotations

import os
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field, replace
from time import perf_counter

from repro.errors import AnalysisError, ReproError
from repro.lp import parse_program
from repro.core import (
    AnalysisTrace,
    AnalyzerSettings,
    MemoryCertificateCache,
    validate_query,
)
from repro.obs import METRICS, diff_snapshots, merge_snapshots

__all__ = ["BatchItem", "BatchResult", "BatchReport", "analyze_many"]


@dataclass(frozen=True)
class BatchItem:
    """One unit of work: analyze *root* in *mode* over *source*."""

    name: str
    source: str
    root: tuple
    mode: str


@dataclass
class BatchResult:
    """Slim, picklable outcome of one :class:`BatchItem`.

    ``status`` is ``PROVED``/``UNKNOWN``, or ``ERROR`` with the message
    in ``error``; ``reasons`` lists the failing SCCs' explanations;
    ``constraint_rows``/``pivots`` summarize the analysis work (the
    scaling benchmarks plot them); ``baselines`` maps baseline method
    names to their statuses when the batch requested them; ``worker``
    identifies the worker process that ran the item (compact ids in
    first-completion order, 0 for in-process runs) — the corpus sweep
    uses it for its load-balance summary.
    """

    name: str
    root: tuple
    mode: str
    status: str
    wall_time: float = 0.0
    worker: int = 0
    constraint_rows: int = 0
    pivots: int = 0
    reasons: tuple = ()
    baselines: dict = field(default_factory=dict)
    error: str = ""
    sccs_reused: int = 0
    sccs_reproved: int = 0

    @property
    def proved(self):
        """True when the verdict is PROVED."""
        return self.status == "PROVED"

    @property
    def elapsed_s(self):
        """Wall-clock seconds the item took (alias of ``wall_time``)."""
        return self.wall_time


@dataclass
class BatchReport:
    """Everything :func:`analyze_many` produced.

    ``results`` preserves input order; ``trace`` is the stage traces of
    every analysis merged (the same fold the serial sweeps print);
    ``metrics`` is the merged metric snapshot of every worker — the
    corpus-level counter totals, regardless of how the work was split.
    ``certificates`` holds the per-SCC cache entries the batch ended
    with (empty unless ``incremental=True``) — feed them back in as
    the next batch's ``certificates`` to carry reuse across sweeps.
    """

    results: list
    trace: AnalysisTrace
    jobs: int
    wall_time: float = 0.0
    metrics: dict = field(default_factory=dict)
    certificates: dict = field(default_factory=dict)

    @property
    def all_proved(self):
        """True when every item's verdict is PROVED."""
        return all(r.proved for r in self.results)


def as_batch_item(entry, index=0):
    """Coerce corpus entries / tuples / dicts into a :class:`BatchItem`."""
    if isinstance(entry, BatchItem):
        return entry
    if hasattr(entry, "source") and hasattr(entry, "root"):
        return BatchItem(
            name=getattr(entry, "name", "item%d" % index),
            source=entry.source,
            root=tuple(entry.root),
            mode=entry.mode,
        )
    if isinstance(entry, dict):
        return BatchItem(
            name=entry.get("name", "item%d" % index),
            source=entry["source"],
            root=tuple(entry["root"]),
            mode=entry["mode"],
        )
    if isinstance(entry, tuple) and len(entry) == 3:
        source, root, mode = entry
        return BatchItem(
            name="item%d" % index, source=source,
            root=tuple(root), mode=mode,
        )
    raise TypeError(
        "cannot interpret %r as a batch item; pass a BatchItem, a "
        "corpus entry, a (source, root, mode) tuple, or a dict" % (entry,)
    )


def analyze_many(entries, jobs=1, settings=None, baselines=(),
                 incremental=False, certificates=None):
    """Analyze every entry; return a :class:`BatchReport`.

    *entries* — any mix of :class:`BatchItem`, corpus entries, or
    ``(source, root, mode)`` tuples.  *jobs* — worker processes
    (``1`` = in-process, the reference path).  *baselines* — optional
    :class:`~repro.baselines.BaselineMethod` objects to run alongside
    the paper's analyzer (their statuses land in
    :attr:`BatchResult.baselines`).

    *incremental* gives every worker a per-SCC certificate cache,
    seeded from *certificates* (a prior report's
    :attr:`BatchReport.certificates`); each worker's final entries are
    merged into the returned report.  Workers do not share entries
    mid-batch (caches are process-local), so the win inside one cold
    batch is modest — the payoff is warm re-runs seeded from a prior
    report.  Verdicts are byte-identical either way.

    Entries sharing a (source, root, mode) triple are solved once;
    the report still lists one :class:`BatchResult` per requested
    entry (duplicates get a copy under their own name).  Roots are
    validated against the parsed program before analysis, so a typo'd
    root comes back as a clear ``ERROR`` result, not a vacuous
    verdict.
    """
    items = [as_batch_item(entry, i) for i, entry in enumerate(entries)]
    settings = settings or AnalyzerSettings()
    if jobs < 1:
        raise AnalysisError("jobs must be >= 1, got %d" % jobs)
    if jobs > 1 and not isinstance(settings.feasibility, str):
        raise AnalysisError(
            "parallel analysis needs a named feasibility backend "
            "(backend instances do not cross process boundaries)"
        )
    baseline_names = tuple(method.name for method in baselines)

    started = perf_counter()
    merged = AnalysisTrace()
    results = [None] * len(items)

    # Identical (source, root, mode) items are solved once; the extra
    # requesters are satisfied from the first answer below.  Batch
    # sweeps with overlapping slices and multi-client fan-in through
    # repro.serve routinely repeat work units, and analysis is a pure
    # function of that triple (the name rides along per requester).
    first_of = {}
    duplicate_of = {}
    indexed = []
    for index, item in enumerate(items):
        key = (item.source, item.root, item.mode)
        if key in first_of:
            duplicate_of[index] = first_of[key]
        else:
            first_of[key] = index
            indexed.append((index, item))

    seed = dict(certificates) if certificates else {}
    merged_certificates = {}
    snapshots = []
    workers = {}
    if jobs == 1 or len(indexed) <= 1:
        chunk_results, trace, snapshot, cert_entries = _run_chunk(
            indexed, settings, baseline_names, incremental, seed
        )
        for index, result in chunk_results:
            result.worker = workers.setdefault(result.worker, len(workers))
            results[index] = result
        merged.merge(trace)
        snapshots.append(snapshot)
        merged_certificates.update(cert_entries)
    else:
        chunks = _make_chunks(indexed, jobs)
        with ProcessPoolExecutor(max_workers=jobs) as pool:
            futures = [
                pool.submit(_run_chunk, chunk, settings, baseline_names,
                            incremental, seed)
                for chunk in chunks
            ]
            for future in futures:
                chunk_results, trace, snapshot, cert_entries = (
                    future.result()
                )
                for index, result in chunk_results:
                    result.worker = workers.setdefault(
                        result.worker, len(workers)
                    )
                    results[index] = result
                merged.merge(trace)
                snapshots.append(snapshot)
                # Fingerprints are content addresses: two workers can
                # only disagree on a key by storing identical payloads.
                merged_certificates.update(cert_entries)
        # Worker registries died with their processes; fold their
        # counts into this process so --metrics sees the whole batch.
        # (jobs=1 ran in-process — its counts are already here.)
        if METRICS.enabled:
            for snapshot in snapshots:
                METRICS.merge_snapshot(snapshot)

    for index, source_index in duplicate_of.items():
        results[index] = replace(results[source_index],
                                 name=items[index].name)

    return BatchReport(
        results=results,
        trace=merged,
        jobs=jobs,
        wall_time=perf_counter() - started,
        metrics=merge_snapshots(*snapshots),
        certificates=merged_certificates,
    )


def _make_chunks(indexed, jobs):
    """Group (index, item) pairs by source text, splitting any group
    further when there are fewer programs than workers.

    Grouping preserves the worker-local analyzer reuse of the serial
    sweep; splitting keeps all workers busy on the ``--all-modes``
    shape (one program, many modes)."""
    groups = {}
    for index, item in indexed:
        groups.setdefault(item.source, []).append((index, item))
    ordered = list(groups.values())
    if len(ordered) >= jobs:
        return ordered
    pieces_per_group = -(-jobs // len(ordered))  # ceil
    chunks = []
    for group in ordered:
        pieces = min(len(group), pieces_per_group)
        size = -(-len(group) // pieces)
        chunks.extend(
            group[start:start + size]
            for start in range(0, len(group), size)
        )
    return chunks


def _run_chunk(indexed, settings, baseline_names, incremental=False,
               certificates=None):
    """Worker body: analyze one chunk, reusing the analyzer across
    consecutive items with identical source.

    Returns ``(results, trace, metrics_delta, cert_entries)`` — the
    delta is what *this chunk* added to the process-wide metrics
    registry, so the parent can merge worker registries it otherwise
    cannot see; ``cert_entries`` are the worker-local certificate
    cache's final entries (empty unless *incremental*).
    ``BatchResult.worker`` leaves here as the worker's pid; the parent
    remaps pids to compact ids.
    """
    from repro.methods import MethodRunner

    worker = os.getpid()
    methods = _resolve_baselines(baseline_names)
    cache = (
        MemoryCertificateCache(entries=dict(certificates or {}))
        if incremental else None
    )
    before = METRICS.snapshot()
    trace = AnalysisTrace()
    out = []
    runner = MethodRunner(settings=settings, certificate_cache=cache)
    program = None
    current_source = None
    for index, item in indexed:
        item_started = perf_counter()
        try:
            if item.source != current_source:
                program = parse_program(item.source)
                current_source = item.source
            validate_query(program, item.root, item.mode)
            result = runner.analyze(program, tuple(item.root), item.mode)
        except ReproError as error:
            out.append((index, BatchResult(
                name=item.name, root=tuple(item.root), mode=item.mode,
                status="ERROR", error=str(error),
                wall_time=perf_counter() - item_started,
                worker=worker,
            )))
            continue
        trace.merge(result.trace)
        verdicts = {}
        for method in methods:
            verdicts[method.name] = method.analyze(
                program, tuple(item.root), item.mode
            ).status
        out.append((index, BatchResult(
            name=item.name,
            root=tuple(item.root),
            mode=item.mode,
            status=result.status,
            wall_time=perf_counter() - item_started,
            worker=worker,
            constraint_rows=sum(
                scc.constraint_rows for scc in result.scc_results
            ),
            pivots=result.trace.stage("solve").pivots,
            reasons=tuple(
                scc.reason for scc in result.failing_sccs()
            ),
            baselines=verdicts,
            sccs_reused=result.sccs_reused,
            sccs_reproved=result.sccs_reproved,
        )))
    return (out, trace, diff_snapshots(METRICS.snapshot(), before),
            dict(cache.entries) if cache is not None else {})


def _resolve_baselines(names):
    """Baseline methods by name (resolved worker-side: the method
    objects themselves need not be picklable)."""
    if not names:
        return ()
    from repro.baselines import ALL_BASELINES

    by_name = {method.name: method for method in ALL_BASELINES}
    try:
        return tuple(by_name[name] for name in names)
    except KeyError as error:
        raise AnalysisError(
            "unknown baseline method %s; available: %s"
            % (error, ", ".join(sorted(by_name)))
        ) from None
