"""Command-line front end.

Usage::

    repro-analyze program.pl --root perm/2 --mode bf
    repro-analyze program.pl --root perm/2 --mode bf --norm list_length
    repro-analyze program.pl --root p/1 --mode b --transform --verbose
    repro-analyze program.pl --root perm/2 --mode bf --cache-dir .cache
    repro-analyze program.pl --root perm/2 --mode bf --remote :8421

Prints the verdict and the certificate (or failure reasons) and exits
0 on PROVED, 1 on UNKNOWN, 2 on usage/parse errors, 3 when
``--timeout`` expires (or a remote daemon reports its own deadline).

``--cache-dir`` consults the same content-addressed persistent store
``repro-serve`` maintains, so repeated identical analyses — across
processes and across CLI/daemon boundaries — are answered without
re-solving.  The store also holds per-SCC certificates: when a whole
request misses (the program changed), analysis still reuses the
certificates of every SCC whose fingerprint is unchanged, re-proving
only what the edit touched (``--no-incremental`` turns this off).
``repro-analyze OLD --diff NEW --root r/n --mode m`` runs that edit
workflow end to end and reports the reused/re-proved split.
``--remote URL`` ships the request to a running daemon instead of
solving locally; add ``--incremental`` to ask the daemon to reuse
*its* stored certificates.
"""

from __future__ import annotations

import argparse
import sys

from repro.errors import AnalysisTimeout, ReproError, ServeError
from repro.lp import parse_program
from repro.core import (
    AnalysisTrace,
    AnalyzerSettings,
    validate_query,
    verify_proof,
)
from repro.core.report import render_report, render_stage_table
from repro.transform import normalize_program

#: Exit code for an analysis stopped by ``--timeout`` (or a daemon's
#: per-request deadline) — distinct from UNKNOWN (1) and errors (2).
EXIT_TIMEOUT = 3


def build_parser():
    """Construct the argparse CLI parser."""
    parser = argparse.ArgumentParser(
        prog="repro-analyze",
        description="Termination analysis via argument sizes and LP "
        "duality (Sohn & Van Gelder, PODS 1991).",
    )
    parser.add_argument(
        "source", nargs="?",
        help="Prolog source file ('-' for stdin)",
    )
    parser.add_argument(
        "--root",
        help="queried predicate as name/arity, e.g. perm/2",
    )
    parser.add_argument(
        "--mode",
        help="bound/free pattern of the query, e.g. bf",
    )
    parser.add_argument(
        "--all-modes", action="store_true",
        help="analyze every ':- mode(...)' declaration in the file "
        "instead of a single --root/--mode pair",
    )
    parser.add_argument(
        "--norm", default="structural",
        choices=("structural", "list_length", "right_spine"),
        help="term-size measure (default: structural)",
    )
    parser.add_argument(
        "--no-interarg", action="store_true",
        help="disable inter-argument constraint inference",
    )
    parser.add_argument(
        "--method", default="argsize",
        help="termination prover (see --list-methods): 'argsize' "
        "(default) is the paper's certifying analysis, 'sizechange' "
        "proves lexicographic descents via local level mappings, "
        "'nonterm' hunts a looping derivation and can DISPROVE, "
        "'portfolio' races them per SCC cheapest-first",
    )
    parser.add_argument(
        "--list-methods", action="store_true",
        help="list the registered termination methods and exit",
    )
    parser.add_argument(
        "--kernel", default="int",
        choices=("int", "array", "reference"),
        help="Fourier–Motzkin/simplex kernel: 'int' (default) is the "
        "dense integer row kernel, 'array' the vectorized numpy "
        "kernel with batched per-SCC LP solves (falls back to 'int' "
        "without numpy), 'reference' the original object pipeline; "
        "all three give byte-identical results",
    )
    parser.add_argument(
        "--negative-theta", action="store_true",
        help="use the Appendix C negative-weight search",
    )
    parser.add_argument(
        "--transform", action="store_true",
        help="run Appendix A preprocessing (equality elimination, "
        "safe unfolding, predicate splitting) first",
    )
    parser.add_argument(
        "--verify", action="store_true",
        help="independently re-check the certificate with the primal LP",
    )
    parser.add_argument(
        "--verbose", action="store_true",
        help="show rule systems and inter-argument constraints",
    )
    parser.add_argument(
        "--stats", action="store_true",
        help="show the pipeline stage trace (per-stage wall time, "
        "constraint rows, cache hits, solver work)",
    )
    parser.add_argument(
        "--json", action="store_true",
        help="emit the verdict and certificate as JSON instead of text",
    )
    parser.add_argument(
        "--trace-out", metavar="PATH",
        help="write the span tree and metric snapshot as JSONL "
        "telemetry (render it later with repro-trace)",
    )
    parser.add_argument(
        "--metrics", action="store_true",
        help="print the process-wide metrics registry (cache hits, "
        "FM rows, simplex pivots, theta iterations) after analysis",
    )
    parser.add_argument(
        "--jobs", type=int, default=1, metavar="N",
        help="worker processes for --all-modes (default 1: in-process)",
    )
    parser.add_argument(
        "--timeout", type=float, default=None, metavar="SECONDS",
        help="wall-clock budget for the analysis; on expiry exit "
        "with status %d (the serial twin of the server's per-request "
        "deadline)" % EXIT_TIMEOUT,
    )
    parser.add_argument(
        "--cache-dir", metavar="DIR",
        help="consult/update the content-addressed persistent result "
        "store in DIR (the same store repro-serve uses); also reuses "
        "stored per-SCC certificates when the whole request misses",
    )
    parser.add_argument(
        "--diff", metavar="NEW",
        help="incremental re-analysis: analyze the positional source "
        "(OLD), then NEW reusing every certificate of an unchanged "
        "SCC; report the reused/re-proved split and exit per NEW's "
        "verdict (needs --root/--mode)",
    )
    parser.add_argument(
        "--no-incremental", action="store_true",
        help="never reuse per-SCC certificates from --cache-dir "
        "(every SCC is proved from scratch)",
    )
    parser.add_argument(
        "--incremental", action="store_true",
        help="with --remote: ask the daemon to reuse per-SCC "
        "certificates from its store when solving",
    )
    parser.add_argument(
        "--remote", metavar="URL",
        help="send the request to a running repro-serve daemon "
        "(e.g. http://127.0.0.1:8421) instead of solving locally",
    )
    parser.add_argument(
        "--profile-out", metavar="PATH",
        help="sample the interpreter while the command runs and write "
        "collapsed stacks (flamegraph.pl / speedscope input) to PATH",
    )
    return parser


def parse_root(text):
    """Parse a name/arity indicator from the command line."""
    try:
        name, arity = text.rsplit("/", 1)
        return (name, int(arity))
    except ValueError:
        raise SystemExit("--root must look like name/arity, got %r" % text)


def main(argv=None):
    """CLI entry point; returns the process exit code."""
    args = build_parser().parse_args(argv)
    if not args.profile_out:
        return _run_cli(args)
    from repro.obs.profiler import SamplingProfiler

    profiler = SamplingProfiler()
    profiler.start()
    try:
        return _run_cli(args)
    finally:
        profiler.stop()
        try:
            stacks = profiler.write(args.profile_out)
        except OSError as error:
            print("cannot write profile: %s" % error, file=sys.stderr)
        else:
            print("wrote %d collapsed stack(s) (%d samples) to %s"
                  % (stacks, profiler.samples, args.profile_out),
                  file=sys.stderr)


def _run_cli(args):
    """The parsed-args body of ``main`` (split out so --profile-out
    can bracket every exit path with one try/finally)."""
    if args.list_methods:
        from repro.methods import available_methods, get_method

        for name in available_methods():
            doc = (type(get_method(name)).__doc__ or "").strip()
            summary = doc.splitlines()[0] if doc else ""
            print("%-12s %s" % (name, summary))
        return 0
    if not args.source:
        raise SystemExit("a source file is required "
                         "(or use --list-methods)")
    if args.all_modes:
        if args.root or args.mode:
            raise SystemExit("--all-modes excludes --root/--mode")
        root = None
    else:
        if not args.root or not args.mode:
            raise SystemExit("--root and --mode are required "
                             "(or use --all-modes)")
        root = parse_root(args.root)

    if args.source == "-":
        text = sys.stdin.read()
    else:
        with open(args.source) as handle:
            text = handle.read()

    try:
        program = parse_program(text)
    except ReproError as error:
        print("parse error: %s" % error, file=sys.stderr)
        return 2

    if args.transform:
        if root is not None:
            roots = [root]
        else:
            roots = [d.indicator for d in program.mode_declarations]
        program, log = normalize_program(program, roots=roots or None)
        if args.verbose:
            print("-- Appendix A transformations --")
            print(log)
            print("-- transformed program --")
            print(program)
            print()

    settings = AnalyzerSettings(
        norm=args.norm,
        use_interarg=not args.no_interarg,
        allow_negative_theta=args.negative_theta,
        fm_kernel=args.kernel,
        method=args.method,
    )

    if args.incremental and not args.remote:
        raise SystemExit("--incremental is the --remote opt-in; local "
                         "runs with --cache-dir reuse certificates by "
                         "default (see --no-incremental)")

    if args.diff:
        if args.all_modes or args.remote or args.jobs > 1:
            raise SystemExit(
                "--diff excludes --all-modes/--remote/--jobs"
            )
        if args.transform:
            raise SystemExit("--diff excludes --transform (it would "
                             "rewrite only the OLD program)")
        if args.no_incremental:
            raise SystemExit("--diff *is* the incremental workflow; "
                             "--no-incremental contradicts it")
        if root is None:
            raise SystemExit("--diff needs --root and --mode")
        return _run_diff(program, root, settings, args)

    if args.remote:
        if args.verify:
            raise SystemExit("--verify is local-only (certificates "
                             "stay in the daemon's workers)")
        if args.jobs > 1 or args.cache_dir:
            raise SystemExit("--remote excludes --jobs and --cache-dir")
        return _run_remote(program, root, settings, args)

    if args.all_modes:
        return _run_all_modes(program, settings, args)

    try:
        validate_query(program, root, args.mode)
    except ReproError as error:
        print("analysis error: %s" % error, file=sys.stderr)
        return 2

    if args.cache_dir:
        return _run_single_stored(program, root, settings, args)

    from repro.methods import run_method
    from repro.serve.pool import deadline

    try:
        with deadline(args.timeout):
            result = run_method(program, root, args.mode,
                                settings=settings)
    except AnalysisTimeout as error:
        print("analysis timed out: %s" % error, file=sys.stderr)
        return EXIT_TIMEOUT
    except ReproError as error:
        print("analysis error: %s" % error, file=sys.stderr)
        return 2

    if args.json:
        from repro.core.export import result_to_json

        print(result_to_json(result))
    else:
        print(
            render_report(
                result,
                show_rule_systems=args.verbose,
                show_environment=args.verbose,
                show_stats=args.stats,
            )
        )

    _verify_if_asked(args, result)
    _emit_telemetry(args, result.trace)
    return 0 if result.proved else 1


def _verify_if_asked(args, result):
    """Re-check the lambda certificate when ``--verify`` asked for it.

    Size-change proofs carry no lambda certificate (``result.proof``
    is None even though the verdict is PROVED) — say so instead of
    crashing the verifier."""
    if not (args.verify and result.proved):
        return
    if result.proof is None:
        print("no lambda certificate to verify (method %s proves "
              "without one)" % result.method, file=sys.stderr)
        return
    verify_proof(result.proof)
    if not args.json:
        print("certificate independently verified (primal simplex).")


def _render_payload(payload):
    """Compact text rendering of a stored/remote verdict payload
    (the full report needs the in-process result object)."""
    root = payload.get("root", {})
    method = payload.get("method", "argsize")
    lines = [
        "%s/%s mode %s: %s  [norm %s%s]"
        % (root.get("predicate"), root.get("arity"),
           payload.get("mode"), payload.get("status"),
           payload.get("norm"),
           "" if method == "argsize" else ", method %s" % method)
    ]
    for scc in payload.get("sccs", ()):
        provenance = scc.get("method", "")
        tag = " [%s]" % provenance if provenance else ""
        if scc.get("status") == "PROVED" and "proof" in scc:
            proof = scc.get("proof", {})
            members = ", ".join(
                "%s/%s^%s" % (m["predicate"], m["arity"], m["adornment"])
                for m in proof.get("members", ())
            )
            note = (" (nonrecursive)"
                    if proof.get("trivially_nonrecursive") else "")
            lines.append("  scc %s: PROVED%s%s" % (members, note, tag))
        else:
            members = ", ".join(
                "%s/%s^%s" % (m["predicate"], m["arity"], m["adornment"])
                for m in scc.get("members", ())
            )
            lines.append("  scc %s: %s%s — %s"
                         % (members, scc.get("status"), tag,
                            scc.get("reason", "")))
    return "\n".join(lines)


def _run_single_stored(program, root, settings, args):
    """Single-mode analysis through the persistent result store.

    ``--json`` prints the canonical payload text on both paths, so
    cold and warm output are byte-identical; the text mode prints the
    full report when solving and the compact payload rendering on a
    hit (``--verify`` needs the in-process certificate, so it skips
    the store read but still publishes its result).
    """
    import json as json_module

    from repro.serve.pool import deadline
    from repro.serve.protocol import (
        AnalyzeRequest,
        payload_from_result,
        payload_text,
    )
    from repro.serve.store import ResultStore

    from repro.serve.store import StoreCertificateCache

    request = AnalyzeRequest(
        source=str(program), root=tuple(root), mode=args.mode,
        settings=settings,
    )
    key = request.key()
    with ResultStore(args.cache_dir) as store:
        cached = None if args.verify else store.get(key)
        if cached is not None:
            payload = json_module.loads(cached)
            print(cached if args.json else _render_payload(payload))
            print("(served from store %s, key %s)"
                  % (args.cache_dir, key[:16]), file=sys.stderr)
            return 0 if payload.get("status") == "PROVED" else 1
        certificate_cache = (
            None if args.no_incremental else StoreCertificateCache(store)
        )
        from repro.methods import MethodRunner

        try:
            with deadline(args.timeout):
                runner = MethodRunner(
                    settings=settings,
                    certificate_cache=certificate_cache,
                )
                result = runner.analyze(program, tuple(root), args.mode)
        except AnalysisTimeout as error:
            print("analysis timed out: %s" % error, file=sys.stderr)
            return EXIT_TIMEOUT
        except ReproError as error:
            print("analysis error: %s" % error, file=sys.stderr)
            return 2
        text = payload_text(payload_from_result(result))
        store.put(key, text, root="%s/%d" % tuple(root), mode=args.mode)
        if certificate_cache is not None and result.sccs_reused:
            print("(reused %d certified SCC(s) from the store, "
                  "re-proved %d)"
                  % (result.sccs_reused, result.sccs_reproved),
                  file=sys.stderr)
    if args.json:
        print(text)
    else:
        print(
            render_report(
                result,
                show_rule_systems=args.verbose,
                show_environment=args.verbose,
                show_stats=args.stats,
            )
        )
    _verify_if_asked(args, result)
    _emit_telemetry(args, result.trace)
    return 0 if result.proved else 1


def _run_diff(old_program, root, settings, args):
    """The one-edit re-analysis workflow (``OLD --diff NEW``).

    Analyzes OLD to populate a certificate cache — the persistent
    store's when ``--cache-dir`` is given (so a warm store skips even
    the OLD solve's SCCs), an in-memory one otherwise — then analyzes
    NEW against it and reports how much of the proof survived the
    edit.  The exit code follows NEW's verdict.
    """
    from repro.core import MemoryCertificateCache
    from repro.serve.pool import deadline

    try:
        with open(args.diff) as handle:
            new_text = handle.read()
        new_program = parse_program(new_text)
        validate_query(old_program, root, args.mode)
        validate_query(new_program, root, args.mode)
    except OSError as error:
        print("cannot read %s: %s" % (args.diff, error), file=sys.stderr)
        return 2
    except ReproError as error:
        print("analysis error: %s" % error, file=sys.stderr)
        return 2

    store = None
    if args.cache_dir:
        from repro.serve.store import ResultStore, StoreCertificateCache

        store = ResultStore(args.cache_dir)
        cache = StoreCertificateCache(store)
    else:
        cache = MemoryCertificateCache()
    from repro.methods import MethodRunner

    label = "%s/%d mode %s" % (root[0], root[1], args.mode)
    try:
        with deadline(args.timeout):
            runner = MethodRunner(settings=settings,
                                  certificate_cache=cache)
            old_result = runner.analyze(old_program, tuple(root),
                                        args.mode)
            new_result = runner.analyze(new_program, tuple(root),
                                        args.mode)
    except AnalysisTimeout as error:
        print("analysis timed out: %s" % error, file=sys.stderr)
        return EXIT_TIMEOUT
    except ReproError as error:
        print("analysis error: %s" % error, file=sys.stderr)
        return 2
    finally:
        if store is not None:
            store.close()

    if args.json:
        import json as json_module

        print(json_module.dumps({
            "old": {"status": old_result.status},
            "new": {
                "status": new_result.status,
                "sccs_reused": new_result.sccs_reused,
                "sccs_reproved": new_result.sccs_reproved,
                "sccs_rejected": new_result.sccs_rejected,
            },
        }, sort_keys=True))
    else:
        print("%s: %s -> %s" % (label, old_result.status,
                                new_result.status))
        print("  certificates: %d reused, %d re-proved (%d rejected "
              "by the verifier)"
              % (new_result.sccs_reused, new_result.sccs_reproved,
                 new_result.sccs_rejected))
        if not new_result.proved and args.verbose:
            for failing in new_result.failing_sccs():
                print("  reason: %s" % failing.reason)
    _verify_if_asked(args, new_result)
    _emit_telemetry(args, new_result.trace)
    return 0 if new_result.proved else 1


def _run_remote(program, root, settings, args):
    """Ship the request(s) to a running ``repro-serve`` daemon."""
    from repro.serve.client import ServeClient

    client = ServeClient(args.remote, timeout=args.timeout or 120.0)
    source = str(program)
    if not args.all_modes:
        return _remote_one(client, source, root, args.mode, settings,
                           args)
    declarations = program.mode_declarations
    if not declarations:
        print("no ':- mode(...)' declarations found", file=sys.stderr)
        return 2
    worst = 0
    for declaration in declarations:
        code = _remote_one(
            client, source, declaration.indicator, declaration.mode,
            settings, args, label=True,
        )
        worst = max(worst, code)
    return worst


def _remote_one(client, source, root, mode, settings, args, label=False):
    """One remote request; returns the exit code for its verdict."""
    try:
        answer = client.analyze(source, root, mode, settings=settings,
                                incremental=args.incremental)
    except ServeError as error:
        print("remote error: %s" % error, file=sys.stderr)
        return EXIT_TIMEOUT if error.status == 504 else 2
    if label:
        print("%s/%d mode %s: %s%s"
              % (root[0], root[1], mode, answer.status,
                 " (cached)" if answer.cached else ""))
    elif args.json:
        print(answer.text)
    else:
        print(_render_payload(answer.payload))
        print("(answered by %s, key %s, cache %s)"
              % (args.remote, answer.key[:16],
                 "hit" if answer.cached else "miss"),
              file=sys.stderr)
        if args.incremental and not answer.cached:
            print("(daemon reused %d certified SCC(s), re-proved %d)"
                  % (answer.sccs_reused, answer.sccs_reproved),
                  file=sys.stderr)
    if args.trace_out and not label:
        try:
            with open(args.trace_out, "w") as handle:
                handle.write(client.trace(answer.key))
            print("wrote remote trace to %s" % args.trace_out,
                  file=sys.stderr)
        except ServeError as error:
            print("no remote trace: %s" % error, file=sys.stderr)
    if args.metrics and not label:
        from repro.obs import render_metrics

        print()
        print(render_metrics(client.metrics()))
    return 0 if answer.proved else 1


def _emit_telemetry(args, trace):
    """Handle ``--trace-out`` / ``--metrics`` for a finished run."""
    if not (args.trace_out or args.metrics):
        return
    from repro.obs import METRICS, render_metrics, write_trace

    snapshot = METRICS.snapshot()
    if args.trace_out:
        meta = {"source": args.source, "argv": " ".join(sys.argv[1:])}
        count = write_trace(args.trace_out, trace.roots, snapshot, meta)
        print("wrote %d telemetry events to %s" % (count, args.trace_out),
              file=sys.stderr)
    if args.metrics:
        print()
        print(render_metrics(snapshot))


def _run_all_modes(program, settings, args):
    """Analyze every declared mode; exit 0 only if all are PROVED.

    One :class:`~repro.methods.MethodRunner` serves every mode, so the
    inter-argument environment is inferred once and dualizations are
    shared across modes; ``--stats`` prints the merged stage trace.
    """
    declarations = program.mode_declarations
    if not declarations:
        print("no ':- mode(...)' declarations found", file=sys.stderr)
        return 2
    if args.jobs > 1:
        if args.timeout is not None or args.cache_dir:
            raise SystemExit(
                "--timeout/--cache-dir need --jobs 1 (the daemon is "
                "the parallel path with a deadline and a store)"
            )
        return _run_all_modes_parallel(program, declarations, settings, args)

    from repro.serve.pool import deadline

    store = None
    certificate_cache = None
    if args.cache_dir:
        from repro.serve.store import ResultStore, StoreCertificateCache

        store = ResultStore(args.cache_dir)
        if not args.no_incremental:
            certificate_cache = StoreCertificateCache(store)
    from repro.methods import MethodRunner

    runner = MethodRunner(
        settings=settings, certificate_cache=certificate_cache
    )
    merged = AnalysisTrace()
    worst = 0
    try:
        with deadline(args.timeout):
            for declaration in declarations:
                name, arity = declaration.indicator
                label = "%s/%d mode %s" % (name, arity, declaration.mode)
                try:
                    validate_query(program, declaration.indicator,
                                   declaration.mode)
                except ReproError as error:
                    print("%s: ERROR %s" % (label, error),
                          file=sys.stderr)
                    worst = 2
                    continue
                hit = _stored_status(store, program, declaration,
                                     settings)
                if hit is not None:
                    print("%s: %s (cached)" % (label, hit))
                    if hit != "PROVED":
                        worst = max(worst, 1)
                    continue
                result = runner.analyze(program, declaration.indicator,
                                        declaration.mode)
                merged.merge(result.trace)
                print("%s: %s" % (label, result.status))
                if store is not None:
                    _store_result(store, program, declaration, settings,
                                  result)
                if args.verify and result.proved and result.proof is not None:
                    verify_proof(result.proof)
                if not result.proved:
                    worst = max(worst, 1)
                    if args.verbose:
                        for failing in result.failing_sccs():
                            print("  reason: %s" % failing.reason)
    except AnalysisTimeout as error:
        print("analysis timed out: %s" % error, file=sys.stderr)
        return EXIT_TIMEOUT
    finally:
        if store is not None:
            store.close()
    if args.stats:
        print()
        print(render_stage_table(merged))
    _emit_telemetry(args, merged)
    return worst


def _stored_status(store, program, declaration, settings):
    """The stored verdict for one mode declaration, or None."""
    if store is None:
        return None
    import json as json_module

    from repro.serve.protocol import AnalyzeRequest

    request = AnalyzeRequest(
        source=str(program), root=declaration.indicator,
        mode=declaration.mode, settings=settings,
    )
    cached = store.get(request.key())
    if cached is None:
        return None
    return json_module.loads(cached).get("status")


def _store_result(store, program, declaration, settings, result):
    """Publish one fresh verdict to the persistent store."""
    from repro.serve.protocol import (
        AnalyzeRequest,
        payload_from_result,
        payload_text,
    )

    request = AnalyzeRequest(
        source=str(program), root=declaration.indicator,
        mode=declaration.mode, settings=settings,
    )
    store.put(
        request.key(), payload_text(payload_from_result(result)),
        root="%s/%d" % declaration.indicator, mode=declaration.mode,
    )


def _run_all_modes_parallel(program, declarations, settings, args):
    """Fan the declared modes over ``--jobs`` worker processes.

    Items carry the program's clause text (workers re-parse their own
    copy — analysis objects do not cross process boundaries), and each
    worker's stage trace is merged for ``--stats``.
    """
    from repro.batch import BatchItem, analyze_many

    if args.verify:
        raise SystemExit(
            "--verify needs --jobs 1 (certificates stay in the workers)"
        )
    source = str(program)
    items = [
        BatchItem(
            name="%s/%d" % declaration.indicator,
            source=source,
            root=declaration.indicator,
            mode=declaration.mode,
        )
        for declaration in declarations
    ]
    report = analyze_many(items, jobs=args.jobs, settings=settings)
    worst = 0
    for declaration, result in zip(declarations, report.results):
        name, arity = declaration.indicator
        print("%s/%d mode %s: %s" % (name, arity, declaration.mode,
                                     result.status))
        if result.status == "ERROR":
            print("  error: %s" % result.error, file=sys.stderr)
            worst = 2
        elif not result.proved:
            worst = max(worst, 1)
            if args.verbose:
                for reason in result.reasons:
                    print("  reason: %s" % reason)
    if args.stats:
        print()
        print(render_stage_table(report.trace))
    _emit_telemetry(args, report.trace)
    return worst


def build_trace_parser():
    """Construct the argparse parser for ``repro-trace``."""
    parser = argparse.ArgumentParser(
        prog="repro-trace",
        description="Render a JSONL telemetry stream written by "
        "'repro-analyze --trace-out' as a top-down time tree "
        "(widest subtree first) plus the recorded metrics.",
    )
    parser.add_argument("trace", help="JSONL trace file to render")
    parser.add_argument(
        "--depth", type=int, default=None, metavar="N",
        help="collapse spans deeper than N levels",
    )
    parser.add_argument(
        "--min-ms", type=float, default=0.0, metavar="MS",
        help="hide spans shorter than MS milliseconds",
    )
    parser.add_argument(
        "--no-metrics", action="store_true",
        help="show only the span tree, not the metric events",
    )
    return parser


def trace_main(argv=None):
    """``repro-trace`` entry point; returns the process exit code."""
    args = build_trace_parser().parse_args(argv)
    from repro.obs import read_trace, render_metrics, render_tree

    try:
        meta, roots, snapshot = read_trace(args.trace)
    except (OSError, ValueError) as error:
        print("trace error: %s" % error, file=sys.stderr)
        return 2
    described = {
        key: value for key, value in meta.items()
        if key not in ("event", "schema")
    }
    try:
        if described:
            print("trace %s (%s)" % (args.trace, ", ".join(
                "%s=%s" % pair for pair in sorted(described.items())
            )))
        print(render_tree(roots, max_depth=args.depth, min_ms=args.min_ms))
        if not args.no_metrics and any(snapshot.get(k) for k in snapshot):
            print()
            print(render_metrics(snapshot))
    except BrokenPipeError:
        # Piped into head/less and the reader left; that's fine.
        sys.stderr.close()
    return 0


if __name__ == "__main__":
    sys.exit(main())
